// Package cluster composes N core.Server instances — each a complete
// fault-tolerant disk array with its own scheme, parity group table and
// failure lifecycle — into one logical continuous media cluster. It
// extends the paper's single-array guarantees to node granularity:
//
//   - Placement: whole clips are sharded across nodes by capacity-aware
//     assignment (most free bytes first), with an optional replication
//     factor so hot clips live on several arrays at once.
//   - Admission: a PLAY is routed to the least-loaded replica whose own
//     per-disk admission control (q−f static caps or the §5 dynamic
//     reservation) accepts it, spilling over to other replicas before a
//     cluster-wide reject. The cluster never overrides a node's
//     controller, so no disk anywhere is ever booked past its q budget.
//   - Node failure: the health detector and fault injector are reused at
//     node granularity. When a node is declared down, in-flight streams
//     of replicated clips fail over to a surviving replica — resuming at
//     their exact byte position — and streams of unreplicated clips are
//     terminated with the existing core.ErrStreamLost semantics.
//
// Like core.Server, a Cluster is deliberately synchronous: Tick()
// advances every live node one service round and drives node-failure
// detection. Callers that share a Cluster across goroutines must
// serialize access (the cmcluster front end holds one mutex, exactly as
// cmserve does for a single array).
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"ftcms/internal/core"
	"ftcms/internal/faultinject"
	"ftcms/internal/health"
	"ftcms/internal/parallel"
	"ftcms/internal/reconfig"
)

// ErrNoReplica is returned by OpenStream when no live node holds the
// clip — every replica's node is down (or the clip was never stored).
var ErrNoReplica = errors.New("cluster: no live replica holds the clip")

// ErrAdmission is wrapped into OpenStream's error when every live
// replica's admission controller refused the stream — the cluster-wide
// reject. It unwraps to core.ErrAdmission so callers retry the same way
// they would against a single array.
var ErrAdmission = core.ErrAdmission

// Config sizes a Cluster.
type Config struct {
	// Nodes configures the member arrays; one core.Server per entry.
	Nodes []core.Config
	// Replication is the default number of copies AddClip stores
	// (default 1; capped by the node count). AddClipReplicated overrides
	// it per clip.
	Replication int
	// Health tunes the node-failure detector; the zero value selects the
	// detector's documented defaults.
	Health health.Config
	// Faults, when non-nil, scripts node-granularity fault injection:
	// the plan's Disk fields index nodes, not disks. Each Tick probes
	// the plan once per live node and feeds the outcome to the node
	// detector, so a scripted fail-stop is discovered by detection —
	// never by command — exactly like a disk inside one array.
	Faults *faultinject.Plan
	// TickWorkers bounds the worker pool Tick fans the per-node service
	// rounds out on: 0 (the default) means one worker per available
	// CPU, 1 forces the sequential loop. Nodes are fully independent
	// arrays (own engine, detector, buffers), so parallel node ticks
	// are deterministic regardless of worker count.
	TickWorkers int
}

// nodeState is a node's cluster-level lifecycle stage. It refines the
// old alive flag for online reconfiguration: draining nodes still serve
// but take no new placements, retired nodes are gone for good.
type nodeState int

const (
	// nodeActive: serving, placeable, probe-monitored.
	nodeActive nodeState = iota
	// nodeDraining: serving its current streams while they migrate off;
	// no new placements. Retires once empty and re-replicated.
	nodeDraining
	// nodeFailed: down; may rejoin (a restart over persistent disks).
	nodeFailed
	// nodeRetired: left the cluster permanently; never probed, never
	// rejoins.
	nodeRetired
)

// node is one member array and its cluster-level lifecycle state.
type node struct {
	id    int
	srv   *core.Server
	state nodeState
}

// serving reports whether the node currently carries streams.
func (n *node) serving() bool { return n.state == nodeActive || n.state == nodeDraining }

// placeable reports whether new clip placements may target the node.
func (n *node) placeable() bool { return n.state == nodeActive }

// Cluster is a set of fault-tolerant arrays behind one admission and
// placement layer.
type Cluster struct {
	nodes    []*node
	rep      int
	detector *health.Detector
	injector *faultinject.Injector

	// placement maps clip name → node ids holding a replica (in
	// placement order); sizes caches the payload size.
	placement map[string][]int
	sizes     map[string]int64

	streams map[int]*Stream
	nextID  int
	round   int64
	// tickWorkers is Config.TickWorkers resolved via parallel.Workers;
	// live is the per-Tick scratch list of live nodes, reused so the
	// steady-state tick allocates nothing.
	tickWorkers int
	live        []*node
	// tickFn is the per-node round body handed to parallel.ForEach,
	// built once in New: a fresh closure every Tick would be the round's
	// only heap allocation.
	tickFn func(i int) error

	// pendingFailover holds streams whose node died and whose replicas
	// had no admission capacity yet; retried every Tick.
	pendingFailover []*Stream

	served     int
	failedOver int
	terminated int
	rejected   int
	// nodeLosses counts nodeFailed transitions, cumulatively — a node
	// that later rejoins still counted. The autopilot replaces each
	// loss once; a rejoin after a replacement just leaves surplus
	// capacity for scale-in to reclaim.
	nodeLosses int

	// Online reconfiguration (reconfig.go in this package).
	// views is the versioned membership log; every transition bumps it
	// and re-audits admission on every serving node.
	views *reconfig.Log
	// desired records each clip's requested replica count, so repairs
	// know what drain/remove must restore.
	desired map[string]int
	// jobs is the FIFO of in-flight clip re-replications; jobClips
	// dedups (at most one job per clip).
	jobs     []*migrateJob
	jobClips map[string]bool
	// planDirty marks that membership or placement changed and
	// planRepairs must re-derive the job set.
	planDirty bool
	// geom caches each node's last observed disk count so the per-round
	// geometry poll is allocation-free when nothing changed.
	geom []int
	// Cumulative migration counters.
	jobsPlanned, jobsDone int
	migratedBlocks        int64
	migratedStreams       int
}

// Stats reports cluster-level counters plus every node's own Stats.
type Stats struct {
	// Round is the number of completed cluster rounds.
	Round int64
	// Nodes and Alive count configured and live nodes.
	Nodes, Alive int
	// FailedNodes lists the down node ids.
	FailedNodes []int
	// Active is the number of open cluster streams (including streams
	// parked awaiting failover re-admission).
	Active int
	// AwaitingFailover counts parked streams currently without a node.
	AwaitingFailover int
	// Served counts cluster streams that completed playback.
	Served int
	// FailedOver counts successful stream failovers to a replica.
	FailedOver int
	// Terminated counts streams ended with ErrStreamLost because no
	// replica could take them over.
	Terminated int
	// Rejected counts cluster-wide admission rejects (every live
	// replica's controller refused).
	Rejected int
	// ViewVersion is the current reconfiguration view version.
	ViewVersion int64
	// Draining and Retired list node ids in those lifecycle states.
	Draining, Retired []int
	// MigrateJobs counts in-flight clip re-replications; MigrateDone and
	// MigrateTotal are the cumulative completed/planned job counts.
	MigrateJobs, MigrateDone, MigrateTotal int
	// MigratedBlocks counts clip blocks copied between nodes by the
	// migration engine; MigratedStreams counts streams moved gracefully
	// off draining nodes.
	MigratedBlocks  int64
	MigratedStreams int
	// Node holds each node's core.Stats, index-aligned with node ids.
	// Down nodes report their last state.
	Node []core.Stats
}

// New builds the cluster and its member servers.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: need at least one node")
	}
	rep := cfg.Replication
	if rep < 1 {
		rep = 1
	}
	if rep > len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: replication %d exceeds %d nodes", rep, len(cfg.Nodes))
	}
	c := &Cluster{
		rep:       rep,
		placement: make(map[string][]int),
		sizes:     make(map[string]int64),
		streams:   make(map[int]*Stream),
		desired:   make(map[string]int),
		jobClips:  make(map[string]bool),
	}
	for i, nc := range cfg.Nodes {
		srv, err := core.New(nc)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, &node{id: i, srv: srv, state: nodeActive})
		c.geom = append(c.geom, srv.Disks())
	}
	c.views = reconfig.NewLog(c.geom)
	c.tickWorkers = parallel.Workers(cfg.TickWorkers)
	c.tickFn = func(i int) error {
		n := c.live[i]
		if terr := n.srv.Tick(); terr != nil {
			return fmt.Errorf("cluster: node %d: %w", n.id, terr)
		}
		return nil
	}
	c.detector = health.NewDetector(len(cfg.Nodes), cfg.Health)
	c.detector.SetOnFail(c.nodeDeclared)
	if cfg.Faults != nil {
		c.injector = faultinject.New(*cfg.Faults)
	}
	return c, nil
}

// NodeCount returns the number of configured nodes.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// NodeServer exposes one member array for inspection (tests audit each
// node's admission invariant through it).
func (c *Cluster) NodeServer(i int) *core.Server { return c.nodes[i].srv }

// NodeAlive reports whether the node is currently serving streams
// (active or draining).
func (c *Cluster) NodeAlive(i int) bool { return c.nodes[i].serving() }

// MigratedBlocks returns the cumulative count of clip blocks copied
// between nodes by the migration engine — cheap enough for a per-tick
// poll (Stats allocates; this does not).
func (c *Cluster) MigratedBlocks() int64 { return c.migratedBlocks }

// Detector exposes the node-failure detector for inspection.
func (c *Cluster) Detector() *health.Detector { return c.detector }

// Injector exposes the node-fault injector (nil unless Config.Faults was
// set). Front ends use it to schedule node faults that detection then
// discovers.
func (c *Cluster) Injector() *faultinject.Injector { return c.injector }

// Replicas returns the node ids holding the clip, in placement order
// (nil for unknown clips).
func (c *Cluster) Replicas(name string) []int {
	reps := c.placement[name]
	out := make([]int, len(reps))
	copy(out, reps)
	if len(out) == 0 {
		return nil
	}
	return out
}

// AddClip stores a clip on Replication nodes chosen capacity-aware.
func (c *Cluster) AddClip(name string, data []byte) error {
	return c.AddClipReplicated(name, data, c.rep)
}

// AddClipReplicated stores a clip on exactly replicas live nodes, chosen
// by descending free capacity (ties to the lower node id). A clip that
// cannot get all its replicas stored is rejected whole.
func (c *Cluster) AddClipReplicated(name string, data []byte, replicas int) error {
	if _, dup := c.placement[name]; dup {
		return fmt.Errorf("cluster: clip %q already stored", name)
	}
	if replicas < 1 || replicas > len(c.nodes) {
		return fmt.Errorf("cluster: replication %d out of range [1, %d]", replicas, len(c.nodes))
	}
	// Candidates: active nodes only (draining nodes take no new
	// placements — they are on their way out), most free bytes first.
	cands := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.placeable() {
			cands = append(cands, n)
		}
	}
	// A node's placement rank is its free capacity discounted by the
	// fraction of its array currently failed or rebuilding: a degraded
	// node (one mid-rebuild, or a P+Q array absorbing two overlapping
	// failures) keeps serving its streams, but new clips land on whole
	// arrays first — their contingency bandwidth is already spoken for.
	freeBytes := func(n *node) int64 {
		free := n.srv.FreeBlocks() * n.srv.BlockSize().Bytes()
		d := n.srv.Disks()
		return free * int64(d-n.srv.DegradedDisks()) / int64(d)
	}
	sort.SliceStable(cands, func(a, b int) bool { return freeBytes(cands[a]) > freeBytes(cands[b]) })
	var placed []int
	for _, n := range cands {
		if len(placed) == replicas {
			break
		}
		if err := n.srv.AddClip(name, data); err != nil {
			continue // this node is full (or too fragmented); try the next
		}
		placed = append(placed, n.id)
	}
	if len(placed) < replicas {
		// No rollback: core has no clip removal, and a partially placed
		// name must not linger. Refuse loudly instead.
		if len(placed) > 0 {
			return fmt.Errorf("cluster: clip %q placed on only %d of %d replicas (cluster nearly full); refusing partial placement", name, len(placed), replicas)
		}
		return fmt.Errorf("cluster: no node can store clip %q (%d bytes)", name, len(data))
	}
	c.placement[name] = placed
	c.sizes[name] = int64(len(data))
	c.desired[name] = replicas
	return nil
}

// Clips returns every stored clip name in sorted order.
func (c *Cluster) Clips() []string {
	out := make([]string, 0, len(c.placement))
	for name := range c.placement {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ClipSize returns a clip's payload size in bytes, or -1 when unknown.
func (c *Cluster) ClipSize(name string) int64 {
	sz, ok := c.sizes[name]
	if !ok {
		return -1
	}
	return sz
}

// candidates returns the clip's serving replica nodes, active replicas
// first (each tier ordered by current stream load ascending, ties to
// the lower node id), optionally skipping one node id. Draining
// replicas trail as a last resort: a stream never dies while any
// serving replica exists, but new routes prefer nodes that are staying.
func (c *Cluster) candidates(name string, skip int) []*node {
	var active, draining []*node
	for _, id := range c.placement[name] {
		n := c.nodes[id]
		if !n.serving() || n.id == skip {
			continue
		}
		if n.state == nodeDraining {
			draining = append(draining, n)
		} else {
			active = append(active, n)
		}
	}
	byLoad := func(out []*node) {
		sort.SliceStable(out, func(a, b int) bool {
			return out[a].srv.Stats().Active < out[b].srv.Stats().Active
		})
	}
	byLoad(active)
	byLoad(draining)
	return append(active, draining...)
}

// OpenStream routes a PLAY to a replica whose own admission control
// accepts it, least-loaded first with spillover. When every live
// replica refuses, the error wraps core.ErrAdmission (retry later); when
// no live replica exists at all it is ErrNoReplica.
func (c *Cluster) OpenStream(name string) (*Stream, error) {
	if _, ok := c.placement[name]; !ok {
		return nil, fmt.Errorf("cluster: unknown clip %q", name)
	}
	cands := c.candidates(name, -1)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoReplica, name)
	}
	for _, n := range cands {
		cs, err := n.srv.OpenStream(name)
		if err == nil {
			st := &Stream{
				c:    c,
				id:   c.nextID,
				clip: name,
				size: c.sizes[name],
				node: n.id,
				st:   cs,
			}
			c.nextID++
			c.streams[st.id] = st
			return st, nil
		}
		if !errors.Is(err, core.ErrAdmission) {
			return nil, err
		}
	}
	c.rejected++
	return nil, fmt.Errorf("cluster: all %d live replicas of %q refused: %w", len(cands), name, core.ErrAdmission)
}

// Tick advances one cluster round: node-fault probes feed the detector,
// every live node runs one service round, and parked failovers retry
// admission. Tick itself errors only on programming bugs.
func (c *Cluster) Tick() error {
	c.round++
	if c.injector != nil {
		c.injector.SetRound(c.round)
		// Probe each serving node once per round: a scripted node fault
		// is discovered here by detection, mirroring how a disk fault
		// inside an array is discovered by its own reads. Retired nodes
		// are deregistered from the detector, so even a stale scripted
		// fault against one can never fire a spurious failover.
		for _, n := range c.nodes {
			if !n.serving() {
				continue
			}
			slow, err := c.injector.Hook(n.id, 0)
			c.detector.Observe(n.id, slow, err)
		}
	}
	// Nodes are independent arrays; their rounds fan out on the worker
	// pool. ForEach reports the lowest-index failure, matching the
	// sequential loop's first-error-wins.
	c.live = c.live[:0]
	for _, n := range c.nodes {
		if n.serving() {
			c.live = append(c.live, n)
		}
	}
	if err := parallel.ForEach(len(c.live), c.tickWorkers, c.tickFn); err != nil {
		return err
	}
	c.retryFailovers()
	return c.reconfigStep()
}

// Round returns the number of completed cluster rounds.
func (c *Cluster) Round() int64 { return c.round }

// FailNode kills a node by operator command — the path the detector
// normally triggers by itself. Idempotent.
func (c *Cluster) FailNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: node %d out of range [0, %d)", i, len(c.nodes))
	}
	if !c.nodes[i].serving() {
		return nil
	}
	c.nodeFailed(i)
	return nil
}

// nodeDeclared is the detector's OnFail callback.
func (c *Cluster) nodeDeclared(i int) { c.nodeFailed(i) }

// nodeFailed marks the node down and disposes of its in-flight streams:
// replicated clips fail over (or park for retry), unreplicated ones
// terminate with ErrStreamLost. A node that dies mid-drain takes this
// path too — its drain intent survives in the view, and the repair
// planner re-replicates around the loss.
func (c *Cluster) nodeFailed(i int) {
	n := c.nodes[i]
	if !n.serving() {
		return
	}
	n.state = nodeFailed
	c.nodeLosses++
	c.planDirty = true
	ids := make([]int, 0, len(c.streams))
	for id, st := range c.streams {
		if st.node == i && st.st != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := c.streams[id]
		// The node is gone; its core stream with it. Close releases the
		// dead server's bookkeeping (harmless) and guards against reuse.
		st.st.Close()
		st.st = nil
		c.failover(st)
	}
}

// RejoinNode brings a failed node back with its stored clips intact (a
// process restart over persistent disks). Detection state and any
// scripted faults against the node are cleared; new placements and
// routes include it again. Streams do not fail back. A node that was
// draining when it died resumes draining — the drain intent is recorded
// in the view and survives the failure. Retired nodes never rejoin.
func (c *Cluster) RejoinNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: node %d out of range [0, %d)", i, len(c.nodes))
	}
	n := c.nodes[i]
	switch n.state {
	case nodeActive, nodeDraining:
		return nil
	case nodeRetired:
		return fmt.Errorf("cluster: node %d is retired and cannot rejoin", i)
	}
	n.state = nodeActive
	if m, ok := c.views.View().Member(i); ok && m.State == reconfig.Draining {
		n.state = nodeDraining
	}
	c.planDirty = true
	c.detector.Reset(i)
	if c.injector != nil {
		c.injector.ClearDisk(i)
	}
	return nil
}

// failover moves a nodeless stream to a surviving replica, resuming at
// its exact delivered byte offset. With replicas but no admission
// capacity the stream parks for retry next Tick; with no replicas it
// terminates with ErrStreamLost.
func (c *Cluster) failover(st *Stream) {
	if st.closed || st.err != nil {
		return
	}
	if st.offset >= st.size {
		// Everything was already handed to the reader; nothing to move.
		c.finish(st)
		return
	}
	cands := c.candidates(st.clip, st.node)
	if len(cands) == 0 {
		st.err = fmt.Errorf("cluster: node %d down and clip %q has no other live replica: %w",
			st.node, st.clip, core.ErrStreamLost)
		c.terminated++
		delete(c.streams, st.id)
		return
	}
	for _, n := range cands {
		cs, err := c.reopenAt(n, st.clip, st.offset)
		if err != nil {
			if errors.Is(err, core.ErrAdmission) {
				continue
			}
			st.err = fmt.Errorf("cluster: failover of %q to node %d: %v: %w", st.clip, n.id, err, core.ErrStreamLost)
			c.terminated++
			delete(c.streams, st.id)
			return
		}
		st.node = n.id
		st.st = cs
		// SeekTo snapped to a block (or parity-group) boundary at or
		// below the offset; discard the replayed prefix.
		st.skip = st.offset - cs.Pos()
		c.failedOver++
		return
	}
	// Replicas exist but are full right now: park and retry each round.
	c.pendingFailover = append(c.pendingFailover, st)
}

// reopenAt opens a stream on the node and repositions it to the block
// containing offset. Errors wrapping core.ErrAdmission mean "full right
// now"; anything else is fatal for this node.
func (c *Cluster) reopenAt(n *node, clip string, offset int64) (*core.Stream, error) {
	cs, err := n.srv.OpenStream(clip)
	if err != nil {
		return nil, err
	}
	if offset == 0 {
		return cs, nil
	}
	if err := cs.Pause(); err != nil {
		cs.Close()
		return nil, err
	}
	if err := cs.SeekTo(offset); err != nil {
		cs.Close()
		return nil, err
	}
	if err := cs.Resume(); err != nil {
		cs.Close()
		return nil, err
	}
	return cs, nil
}

// retryFailovers re-attempts admission for parked streams.
func (c *Cluster) retryFailovers() {
	if len(c.pendingFailover) == 0 {
		return
	}
	parked := c.pendingFailover
	c.pendingFailover = nil
	for _, st := range parked {
		if st.closed || st.err != nil {
			continue
		}
		c.failover(st) // re-parks itself if still refused
	}
}

// finish retires a stream that delivered its whole clip.
func (c *Cluster) finish(st *Stream) {
	if _, open := c.streams[st.id]; open {
		delete(c.streams, st.id)
		c.served++
	}
}

// Stats returns the cluster's counters and every node's Stats.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Round:           c.round,
		Nodes:           len(c.nodes),
		Active:          len(c.streams),
		Served:          c.served,
		FailedOver:      c.failedOver,
		Terminated:      c.terminated,
		Rejected:        c.rejected,
		ViewVersion:     c.views.Version(),
		MigrateJobs:     len(c.jobs),
		MigrateDone:     c.jobsDone,
		MigrateTotal:    c.jobsPlanned,
		MigratedBlocks:  c.migratedBlocks,
		MigratedStreams: c.migratedStreams,
	}
	for _, n := range c.nodes {
		switch n.state {
		case nodeActive:
			st.Alive++
		case nodeDraining:
			st.Alive++
			st.Draining = append(st.Draining, n.id)
		case nodeFailed:
			st.FailedNodes = append(st.FailedNodes, n.id)
		case nodeRetired:
			st.Retired = append(st.Retired, n.id)
		}
		st.Node = append(st.Node, n.srv.Stats())
	}
	for _, s := range c.streams {
		if s.st == nil {
			st.AwaitingFailover++
		}
	}
	return st
}
