package cluster

import (
	"errors"
	"fmt"
	"testing"

	"ftcms/internal/autopilot"
	"ftcms/internal/core"
	"ftcms/internal/units"
)

// tinyNodeConfig is a deliberately small array — (q−f)·d = 6 admission
// slots — so a test can saturate a node with a handful of streams.
func tinyNodeConfig() core.Config {
	return core.Config{
		Scheme: core.Declustered,
		Disk:   fastDisk(),
		D:      3, P: 3,
		Block: 8 * units.KB,
		Q:     4, F: 2,
		Buffer: 16 * units.MB,
	}
}

func tinyCluster(t *testing.T, nodes, rep int) *Cluster {
	t.Helper()
	cfg := Config{Replication: rep}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, tinyNodeConfig())
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosAutopilot is the live-cluster closed-loop chaos test: a
// flash crowd saturates a hot clip's replicas while a node carrying
// in-flight streams is killed. The pilot — not the test — must join
// the replacement and scale out into the crowd; meanwhile every
// tracked stream must finish byte-exact on a survivor with each node's
// admission invariant audited every round and zero buffer overflows.
// Runs under -race in CI.
func TestChaosAutopilot(t *testing.T) {
	c := tinyCluster(t, 3, 2)
	pilot := NewPilot(c, tinyNodeConfig(), autopilot.Config{
		Window:           4,
		ScaleOutHold:     2,
		ScaleOutCooldown: 40,
		ReplaceCooldown:  4,
		Spares:           1,
	})

	clips := map[string][]byte{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("clip%d", i)
		clips[name] = clipBytes(int64(200+i), 30_000+i*5_000)
		if err := c.AddClip(name, clips[name]); err != nil {
			t.Fatal(err)
		}
	}

	type play struct {
		st   *Stream
		want []byte
		off  int64
		done bool
	}
	var plays []*play
	open := func(name string) bool {
		st, err := c.OpenStream(name)
		if err != nil {
			if errors.Is(err, core.ErrAdmission) {
				return false
			}
			t.Fatal(err)
		}
		plays = append(plays, &play{st: st, want: clips[name]})
		return true
	}
	// One tracked stream per clip, spread across the membership.
	for i := 0; i < 3; i++ {
		if !open(fmt.Sprintf("clip%d", i)) {
			t.Fatal("baseline stream refused on an empty cluster")
		}
	}

	audit := func() {
		t.Helper()
		for i := 0; i < c.NodeCount(); i++ {
			if !c.NodeAlive(i) {
				continue
			}
			if err := c.NodeServer(i).CheckAdmission(); err != nil {
				t.Fatalf("round %d: node %d over-committed: %v", c.Round(), i, err)
			}
		}
	}
	drain := func(p *play) {
		t.Helper()
		if p.done {
			return
		}
		done, err := readAvailable(t, p.st, p.want, &p.off)
		if err != nil {
			t.Fatalf("round %d: clip %s at offset %d: %v", c.Round(), p.st.Clip(), p.off, err)
		}
		if done {
			p.done = true
		}
	}
	step := func() {
		t.Helper()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := pilot.Step(); err != nil {
			t.Fatal(err)
		}
		audit()
		for _, p := range plays {
			drain(p)
		}
	}

	// Flash crowd: hammer clip0 until both its replicas refuse, then
	// keep offering every round so the reject window stays hot.
	for open("clip0") {
	}
	base := c.NodeCount()
	for r := 0; r < 12 && c.NodeCount() == base; r++ {
		open("clip0") // refused: both replicas are saturated
		step()
	}
	if c.NodeCount() != base+1 {
		t.Fatalf("pilot never scaled out under a sustained flash crowd (nodes = %d)", c.NodeCount())
	}

	// Node kill mid-playback: the pilot must replace the loss from its
	// spare budget without any operator command.
	victim := plays[0].st.Node()
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	grown := c.NodeCount()
	for r := 0; r < 40 && c.NodeCount() == grown; r++ {
		step()
	}
	if c.NodeCount() != grown+1 {
		t.Fatal("pilot never replaced the killed node")
	}
	var sawReplace bool
	for _, a := range pilot.Actions() {
		if a.Kind == autopilot.Replace {
			sawReplace = true
		}
	}
	if !sawReplace {
		t.Fatalf("no replace action in trace: %s", autopilot.TraceString(pilot.Actions()))
	}

	// Every stream that survived the kill finishes byte-exact.
	for r := 0; r < 4000; r++ {
		allDone := true
		for _, p := range plays {
			if !p.done && p.st.Err() == nil {
				allDone = false
			}
		}
		if allDone {
			break
		}
		step()
	}
	for _, p := range plays {
		if p.st.Err() != nil {
			// Only acceptable loss: a stream whose clip lost both
			// replicas — impossible here with replication 2 and one
			// kill, so any error is a failure.
			t.Fatalf("clip %s terminated: %v", p.st.Clip(), p.st.Err())
		}
		if !p.done {
			t.Fatalf("clip %s never completed (offset %d of %d, node %d)",
				p.st.Clip(), p.off, len(p.want), p.st.Node())
		}
	}

	stats := c.Stats()
	for i, ns := range stats.Node {
		if i == victim {
			continue
		}
		if ns.Overflows != 0 {
			t.Fatalf("node %d reported %d buffer overflows", i, ns.Overflows)
		}
	}
	if stats.Terminated != 0 {
		t.Fatalf("Terminated = %d, want 0 (every clip is replicated)", stats.Terminated)
	}
}

// TestPilotQuiescentStepAllocs pins the controller's steady-state cost:
// observing an idle cluster allocates nothing.
func TestPilotQuiescentStepAllocs(t *testing.T) {
	c := tinyCluster(t, 3, 2)
	pilot := NewPilot(c, tinyNodeConfig(), autopilot.Config{})
	for i := 0; i < 3; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := pilot.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok, _ := pilot.Step(); ok {
			t.Fatal("idle cluster fired an action")
		}
	}); avg != 0 {
		t.Fatalf("quiescent Step allocates %.1f per run, want 0", avg)
	}
}

// TestPilotDisableFreezes: a disabled pilot neither observes nor acts,
// and re-enabling rebases the reject baseline so the outage window's
// rejects cannot fire a stale scale-out.
func TestPilotDisableFreezes(t *testing.T) {
	c := tinyCluster(t, 2, 2)
	pilot := NewPilot(c, tinyNodeConfig(), autopilot.Config{
		Window: 4, ScaleOutHold: 2,
	})
	if !pilot.Enabled() {
		t.Fatal("pilot starts disabled")
	}
	pilot.SetEnabled(false)
	if pilot.Shedding() {
		t.Fatal("disabled pilot reports shedding")
	}

	// Saturate the cluster and pile up rejects while the pilot is off.
	data := clipBytes(5, 30_000)
	if err := c.AddClip("hot", data); err != nil {
		t.Fatal(err)
	}
	saturate := func() {
		t.Helper()
		for {
			if _, err := c.OpenStream("hot"); err != nil {
				if !errors.Is(err, core.ErrAdmission) {
					t.Fatal(err)
				}
				return // the refusal just bumped the reject counter
			}
		}
	}
	for r := 0; r < 10; r++ {
		saturate()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := pilot.Step(); ok {
			t.Fatal("disabled pilot fired an action")
		}
	}
	if c.NodeCount() != 2 {
		t.Fatalf("membership changed while disabled: %d nodes", c.NodeCount())
	}

	// Re-enable with no fresh rejects: the stale backlog must not count.
	pilot.SetEnabled(true)
	for r := 0; r < 10; r++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if a, ok, _ := pilot.Step(); ok {
			t.Fatalf("re-enabled pilot replayed stale rejects: %v", a)
		}
	}
}
