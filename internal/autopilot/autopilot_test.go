package autopilot

import (
	"reflect"
	"testing"
)

// calm returns a baseline healthy-cluster signal for round r.
func calm(r int64) Signals {
	return Signals{Round: r, Active: 80, Capacity: 100, ActiveNodes: 3, DrainCandidate: -1}
}

// TestScaleOutHysteresis: rejects must persist for Window-sum ≥ threshold
// over ScaleOutHold consecutive rounds before a join fires; a single
// spike inside the window does not.
func TestScaleOutHysteresis(t *testing.T) {
	c := New(Config{Window: 4, ScaleOutRejects: 3, ScaleOutHold: 3, MaxNodes: 5, MinNodes: 3})
	// One spike of 5 rejects: window sum stays ≥ 3 for 4 rounds (the
	// spike's residence time), which with hold 3 would fire — so use a
	// spike of 2, under the sum threshold entirely.
	for r := int64(0); r < 10; r++ {
		s := calm(r)
		if r == 2 {
			s.Rejects = 2
		}
		if a, ok := c.Observe(s); ok {
			t.Fatalf("sub-threshold spike fired %v", a)
		}
	}
	// Sustained rejects: 1/round pushes the 4-round window sum to 3 at
	// round 12, hold satisfied at round 14.
	var got []Action
	for r := int64(10); r < 20; r++ {
		s := calm(r)
		s.Rejects = 1
		if a, ok := c.Observe(s); ok {
			got = append(got, a)
		}
	}
	if len(got) != 1 || got[0].Kind != ScaleOut {
		t.Fatalf("sustained rejects fired %v, want one scale-out", got)
	}
	if got[0].Round != 14 {
		t.Fatalf("scale-out at round %d, want 14 (sum≥3 from 12, hold 3)", got[0].Round)
	}
}

// TestFlappingCooldown is the satellite coverage: a synthetic load that
// oscillates across the scale-out threshold every other window must
// produce at most one action per cooldown period.
func TestFlappingCooldown(t *testing.T) {
	cases := []struct {
		name           string
		window, hold   int
		cooldown       int64
		rounds         int64
		period         int64 // load on for period rounds, off for period
		maxNodes       int
		wantMaxPerCool int
	}{
		{"every-other-window", 4, 2, 32, 256, 8, 64, 1},
		{"fast-flap", 2, 1, 16, 200, 2, 64, 1},
		{"slow-swing", 8, 4, 48, 384, 24, 64, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{
				Window: tc.window, ScaleOutRejects: 1, ScaleOutHold: tc.hold,
				ScaleOutCooldown: tc.cooldown, MaxNodes: tc.maxNodes, MinNodes: 3,
			})
			for r := int64(0); r < tc.rounds; r++ {
				s := calm(r)
				if (r/tc.period)%2 == 0 {
					s.Rejects = 5 // well over threshold: crossing every other period
				}
				s.ActiveNodes = 3 + len(c.Actions()) // joins take effect immediately
				c.Observe(s)
			}
			// Bucket the fired actions by cooldown period: no bucket may
			// hold more than one.
			buckets := map[int64]int{}
			for _, a := range c.Actions() {
				if a.Kind != ScaleOut {
					t.Fatalf("unexpected action %v", a)
				}
				buckets[a.Round/tc.cooldown]++
			}
			for b, n := range buckets {
				if n > tc.wantMaxPerCool {
					t.Fatalf("cooldown period %d saw %d actions, want ≤ %d", b, n, tc.wantMaxPerCool)
				}
			}
			if len(c.Actions()) == 0 {
				t.Fatal("oscillating load above threshold never fired at all")
			}
		})
	}
}

// TestScaleInFloorAndInterlocks: scale-in never crosses MinNodes, aborts
// when a failure or rebuild is in flight, and defers while another
// reconfiguration runs — each suppression recording its reason.
func TestScaleInFloorAndInterlocks(t *testing.T) {
	idle := func(r int64) Signals {
		return Signals{Round: r, Active: 5, Capacity: 100, ActiveNodes: 4, DrainCandidate: 3}
	}
	mk := func() *Controller {
		return New(Config{Window: 2, ScaleInUtil: 0.5, ScaleInHold: 3, MinNodes: 3, MaxNodes: 5})
	}

	// Happy path: idle for hold rounds drains the candidate.
	c := mk()
	var fired []Action
	for r := int64(0); r < 6; r++ {
		if a, ok := c.Observe(idle(r)); ok {
			fired = append(fired, a)
		}
	}
	if len(fired) != 1 || fired[0].Kind != ScaleIn || fired[0].Node != 3 {
		t.Fatalf("idle cluster fired %v, want one scale-in of node 3", fired)
	}

	// At the floor: suppressed with the floor reason.
	c = mk()
	for r := int64(0); r < 10; r++ {
		s := idle(r)
		s.ActiveNodes = 3
		s.DrainCandidate = -1
		if a, ok := c.Observe(s); ok {
			t.Fatalf("scale-in below replication floor: %v", a)
		}
	}
	if got := c.Status().Interlock; got != lockFloor {
		t.Fatalf("interlock %q, want %q", got, lockFloor)
	}

	// Rebuild in flight: aborted (hysteresis resets), reason recorded.
	c = mk()
	for r := int64(0); r < 10; r++ {
		s := idle(r)
		s.Rebuilding = true
		if a, ok := c.Observe(s); ok {
			t.Fatalf("scale-in during rebuild: %v", a)
		}
	}
	if got := c.Status().Interlock; got != lockRebuild {
		t.Fatalf("interlock %q, want %q", got, lockRebuild)
	}

	// Unreplaced node loss blocks scale-in too (spares exhausted keeps
	// NodeLosses > replaced forever).
	c = New(Config{Window: 2, ScaleInUtil: 0.5, ScaleInHold: 3, MinNodes: 3, MaxNodes: 5, Spares: -1})
	for r := int64(0); r < 9; r++ {
		s := idle(r)
		s.NodeLosses = 1
		if a, ok := c.Observe(s); ok {
			t.Fatalf("scale-in with unresolved failure: %v", a)
		}
	}
	if got := c.Status().Interlock; got != lockFailure {
		t.Fatalf("interlock %q, want %q", got, lockFailure)
	}

	// Reconfiguration in flight: deferred, fires once clear.
	c = mk()
	for r := int64(0); r < 6; r++ {
		s := idle(r)
		s.Reconfiguring = true
		if a, ok := c.Observe(s); ok {
			t.Fatalf("stacked reconfiguration: %v", a)
		}
	}
	if got := c.Status().Interlock; got != lockReconfig {
		t.Fatalf("interlock %q, want %q", got, lockReconfig)
	}
	if a, ok := c.Observe(idle(6)); !ok || a.Kind != ScaleIn {
		t.Fatalf("cleared interlock did not release the deferred scale-in (got %v, %v)", a, ok)
	}
}

// TestReplaceOnLoss: a confirmed loss consumes one spare, exactly once,
// and the budget caps further replacements.
func TestReplaceOnLoss(t *testing.T) {
	c := New(Config{Window: 4, Spares: 1, MinNodes: 3, MaxNodes: 5})
	s := calm(0)
	s.NodeLosses = 1
	a, ok := c.Observe(s)
	if !ok || a.Kind != Replace {
		t.Fatalf("loss produced %v ok=%v, want replace", a, ok)
	}
	for r := int64(1); r < 50; r++ {
		s := calm(r)
		s.NodeLosses = 1
		if a, ok := c.Observe(s); ok {
			t.Fatalf("same loss replaced twice: %v", a)
		}
	}
	// Second loss: spare budget exhausted.
	s = calm(50)
	s.NodeLosses = 2
	if a, ok := c.Observe(s); ok {
		t.Fatalf("replacement beyond spare budget: %v", a)
	}
	if got := c.Status().Interlock; got != lockSpares {
		t.Fatalf("interlock %q, want %q", got, lockSpares)
	}
}

// TestShedHysteresis: the shed mode starts after the backlog holds over
// ShedQueue, stops only after it falls to ShedExit, and a backlog
// wobbling between the two thresholds changes nothing.
func TestShedHysteresis(t *testing.T) {
	c := New(Config{Window: 4, ShedQueue: 100, ShedExit: 10, ShedHold: 2, MinNodes: 3, MaxNodes: 3})
	sig := func(r int64, q int) Signals {
		s := calm(r)
		s.QueueDepth = q
		s.Rejects = 1 // keep the idle path disarmed
		return s
	}
	seq := []struct {
		q         int
		wantKind  Kind
		wantFired bool
	}{
		{150, 0, false}, // first round over: hold not met
		{150, ShedStart, true},
		{50, 0, false}, // between thresholds: stays shedding
		{50, 0, false},
		{150, 0, false},
		{5, 0, false}, // first round under exit
		{5, ShedStop, true},
		{5, 0, false},
	}
	for i, st := range seq {
		a, ok := c.Observe(sig(int64(i), st.q))
		if ok != st.wantFired || (ok && a.Kind != st.wantKind) {
			t.Fatalf("step %d (queue %d): got %v ok=%v, want fired=%v kind=%v",
				i, st.q, a, ok, st.wantFired, st.wantKind)
		}
		wantMode := i >= 1 && i < 6
		if c.Shedding() != wantMode {
			t.Fatalf("step %d: shedding=%v, want %v", i, c.Shedding(), wantMode)
		}
	}
}

// TestDeterministicReplay: the same signal stream always yields a
// byte-identical action trace.
func TestDeterministicReplay(t *testing.T) {
	stream := make([]Signals, 600)
	for r := range stream {
		s := calm(int64(r))
		if r > 50 && r < 120 {
			s.Rejects = 3
			s.QueueDepth = 400
		}
		if r >= 200 {
			s.NodeLosses = 1
		}
		if r > 400 {
			s.Active = 5
			s.DrainCandidate = 4
			s.ActiveNodes = 4
		}
		stream[r] = s
	}
	run := func() string {
		c := New(Config{Window: 8, MinNodes: 3, MaxNodes: 5})
		for _, s := range stream {
			s.ActiveNodes += countJoins(c.Actions())
			c.Observe(s)
		}
		return TraceString(c.Actions())
	}
	a, b := run(), run()
	if a != b || a == "" {
		t.Fatalf("replay diverged or empty:\n%q\nvs\n%q", a, b)
	}
}

func countJoins(actions []Action) int {
	n := 0
	for _, a := range actions {
		if a.Kind == ScaleOut || a.Kind == Replace {
			n++
		}
	}
	return n
}

// TestQuiescentObserveAllocs: with nothing pending, Observe must not
// touch the heap — it runs inside every round tick.
func TestQuiescentObserveAllocs(t *testing.T) {
	c := New(Config{MinNodes: 3, MaxNodes: 5})
	r := int64(0)
	if n := testing.AllocsPerRun(200, func() {
		r++
		c.Observe(calm(r))
	}); n != 0 {
		t.Fatalf("quiescent Observe allocates %v per call, want 0", n)
	}
}

// TestConfigDefaults pins the documented zero-value defaults.
func TestConfigDefaults(t *testing.T) {
	got := New(Config{}).Config()
	want := Config{
		Window: 16, ScaleOutRejects: 1, ScaleOutHold: 4, ScaleOutCooldown: 64,
		MaxNodes: 3, MinNodes: 1, ScaleInUtil: 0.5, ScaleInHold: 64,
		ScaleInCooldown: 64, Spares: 1, ReplaceCooldown: 16,
		ShedQueue: 256, ShedExit: 32, ShedHold: 4,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("defaults = %+v, want %+v", got, want)
	}
}
