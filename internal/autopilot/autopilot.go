// Package autopilot closes the loop between the workload signals the
// cluster tier already produces and the §14 reconfiguration mechanisms
// it already implements. A Controller consumes one Signals snapshot per
// round and emits at most one Action: scale-out (join a node) on
// sustained admission rejects, scale-in (drain a node) off-peak,
// spare-node replacement after a detector-confirmed node loss, and a
// graceful-degradation shed mode that turns away new lean-back sessions
// before VCR resumes when no capacity action can land in time.
//
// The controller is deliberately boring: a pure deterministic state
// machine over the signal stream. No clocks, no randomness, no
// goroutines — the same signals in the same order produce a
// byte-identical action trace, which is what makes closed-loop scenario
// runs replayable across worker counts. Robustness comes from three
// guards layered on the thresholds:
//
//   - hysteresis: a threshold must hold for a configured number of
//     consecutive rounds before the action arms, so one bad round (or a
//     flash crowd's leading edge) cannot flap the cluster;
//   - per-action cooldowns: after an action fires, its kind is locked
//     out for a configured number of rounds, bounding the action rate no
//     matter how the load oscillates;
//   - interlocks: scale-in never runs below the replication floor, never
//     runs while a failure is unresolved or a rebuild/migration is in
//     flight, and only one reconfiguration is in flight at a time.
//     Suppressed decisions record the interlock reason for STATS.
package autopilot

import (
	"fmt"

	"ftcms/internal/admission"
)

// Kind enumerates the controller's actions.
type Kind uint8

const (
	// ScaleOut joins a fresh node on sustained admission rejects.
	ScaleOut Kind = iota
	// ScaleIn drains the least-loaded surplus node off-peak.
	ScaleIn
	// Replace joins a spare node after a confirmed node loss.
	Replace
	// ShedStart begins turning away new lean-back admissions.
	ShedStart
	// ShedStop ends the shed mode once the backlog clears.
	ShedStop
	numKinds
)

var kindNames = [numKinds]string{"scale-out", "scale-in", "replace", "shed-start", "shed-stop"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Action is one decision the controller issued.
type Action struct {
	// Round is the signal round the action fired on.
	Round int64
	// Kind is what to do.
	Kind Kind
	// Node is the drain target for ScaleIn and -1 otherwise (joins pick
	// their own id).
	Node int
	// Reason is a short static explanation for logs and STATS.
	Reason string
}

// String renders one trace line; the acceptance tests compare whole
// traces byte for byte.
func (a Action) String() string {
	if a.Node >= 0 {
		return fmt.Sprintf("round=%d %s node=%d %s", a.Round, a.Kind, a.Node, a.Reason)
	}
	return fmt.Sprintf("round=%d %s %s", a.Round, a.Kind, a.Reason)
}

// Signals is one round's worth of observations. Every field is derived
// from quantities the engines already maintain deterministically, so
// feeding the controller adds no allocation and no new sources of
// nondeterminism.
type Signals struct {
	// Round is the current round number.
	Round int64
	// Rejects counts requests lost this round: queue abandonments in the
	// simulator, synchronous admission refusals in the live cluster.
	Rejects int
	// QueueDepth is the pending-request backlog after this round's
	// admissions (0 for tiers without a queue).
	QueueDepth int
	// Active and Capacity are the cluster's in-flight stream count and
	// total admission slots over active nodes; their ratio is the
	// utilization the scale-in rule watches.
	Active, Capacity int
	// ActiveNodes counts nodes currently serving and accepting streams.
	ActiveNodes int
	// NodeLosses counts detector-confirmed permanent node losses so far
	// (cumulative; restarts that rejoin do not count). The controller
	// replaces each loss once.
	NodeLosses int
	// Rebuilding reports a rebuild or repair in flight anywhere.
	Rebuilding bool
	// Reconfiguring reports an in-flight reconfiguration (drain,
	// migration, re-layout). The controller will not stack another.
	Reconfiguring bool
	// DrainCandidate is the preferred scale-in target (least-loaded
	// surplus node), or -1 when nothing is safely drainable.
	DrainCandidate int
}

// Config sets the policy thresholds. The zero value of every field
// selects the default shown; New clamps the rest.
type Config struct {
	// Window is the reject window width W in rounds (default 16).
	Window int
	// ScaleOutRejects arms scale-out when the window's reject sum
	// reaches it (default 1 — any sustained rejection is capacity the
	// cluster should add).
	ScaleOutRejects int
	// ScaleOutHold is how many consecutive rounds the window must stay
	// over threshold before scale-out fires (default 4).
	ScaleOutHold int
	// ScaleOutCooldown locks out further scale-outs for this many rounds
	// after one fires (default 4·Window).
	ScaleOutCooldown int64
	// MaxNodes caps the node count scale-out may grow the cluster to
	// (default MinNodes+2). Replacements are budgeted separately.
	MaxNodes int
	// MinNodes is the replication-safety floor scale-in never crosses
	// (default 1; the engines raise it to the original membership).
	MinNodes int
	// ScaleInUtil arms scale-in when utilization stays below it with an
	// empty window and queue (default 0.5).
	ScaleInUtil float64
	// ScaleInHold is the consecutive-round hold for scale-in (default
	// 4·Window — leaving is much cheaper to delay than arriving).
	ScaleInHold int
	// ScaleInCooldown locks out further scale-ins (default 4·Window).
	ScaleInCooldown int64
	// Spares is the replacement budget: how many lost nodes the
	// controller may replace (default 1).
	Spares int
	// ReplaceCooldown spaces replacements (default Window).
	ReplaceCooldown int64
	// ShedQueue starts shedding when the backlog reaches it for
	// ShedHold rounds (default 256). ShedExit stops once the backlog
	// falls to it (default ShedQueue/8). Shedding needs no cooldown:
	// the disjoint start/stop thresholds plus the hold are the
	// hysteresis.
	ShedQueue, ShedExit int
	// ShedHold is the consecutive-round hold for entering and leaving
	// the shed mode (default 4).
	ShedHold int
	// FailoverReserve is the number of admission slots the serving tier
	// keeps free while the shed mode is on, so a node loss under
	// overload can still fail its in-flight streams over instead of
	// dropping them — the paper's contingency capacity raised to
	// cluster granularity. 0 lets the engine pick its default (the sim
	// engine uses three nodes' worth, sized so the slice of the reserve
	// actually reachable from any one loss — it spreads over all nodes
	// and fragments across replica subsets and position classes —
	// covers that node's streams); negative disables the reserve. The
	// controller itself only carries the value; enforcement lives in
	// the admission path.
	FailoverReserve int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.ScaleOutRejects <= 0 {
		c.ScaleOutRejects = 1
	}
	if c.ScaleOutHold <= 0 {
		c.ScaleOutHold = 4
	}
	if c.ScaleOutCooldown <= 0 {
		c.ScaleOutCooldown = 4 * int64(c.Window)
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = c.MinNodes + 2
	}
	if c.MaxNodes < c.MinNodes {
		c.MaxNodes = c.MinNodes
	}
	if c.ScaleInUtil <= 0 {
		c.ScaleInUtil = 0.5
	}
	if c.ScaleInHold <= 0 {
		c.ScaleInHold = 4 * c.Window
	}
	if c.ScaleInCooldown <= 0 {
		c.ScaleInCooldown = 4 * int64(c.Window)
	}
	if c.Spares < 0 {
		c.Spares = 0
	} else if c.Spares == 0 {
		c.Spares = 1
	}
	if c.ReplaceCooldown <= 0 {
		c.ReplaceCooldown = int64(c.Window)
	}
	if c.ShedQueue <= 0 {
		c.ShedQueue = 256
	}
	if c.ShedExit <= 0 {
		c.ShedExit = c.ShedQueue / 8
	}
	if c.ShedExit >= c.ShedQueue {
		c.ShedExit = c.ShedQueue - 1
	}
	if c.ShedHold <= 0 {
		c.ShedHold = 4
	}
	return c
}

// Interlock reasons are static strings so recording one never allocates.
const (
	lockReconfig = "reconfiguration in flight"
	lockRebuild  = "rebuild in flight"
	lockFailure  = "node failure unresolved"
	lockFloor    = "at replication floor"
	lockBudget   = "node budget exhausted"
	lockSpares   = "spare budget exhausted"
	lockCooldown = "cooldown"
	lockNoTarget = "no drain candidate"
)

// Controller is the policy state machine. Not safe for concurrent use;
// callers drive it from their own round loop.
type Controller struct {
	cfg                  Config
	window               *admission.RejectWindow
	overFor              int // consecutive rounds with window sum ≥ ScaleOutRejects
	underFor             int // consecutive rounds idle enough to scale in
	shedHiFor, shedLoFor int
	cooldownUntil        [numKinds]int64
	shedding             bool
	joins                int // scale-out joins issued
	replaced             int // losses replaced
	actions              []Action
	last                 Action
	hasLast              bool
	interlock            string // why the most recent armed decision was suppressed
	round                int64
}

// New builds a controller; zero-value Config fields take defaults.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:    cfg,
		window: admission.NewRejectWindow(cfg.Window),
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Shedding reports whether the degradation mode is on; the serving tier
// consults it before admitting new lean-back sessions.
func (c *Controller) Shedding() bool { return c.shedding }

// Actions returns the full decision trace in firing order. The slice is
// the controller's own; callers must not mutate it.
func (c *Controller) Actions() []Action { return c.actions }

// cool reports whether kind k is out of cooldown at round r.
func (c *Controller) cool(k Kind, r int64) bool { return r >= c.cooldownUntil[k] }

// fire records an action and starts its cooldown.
func (c *Controller) fire(k Kind, node int, reason string, cooldown int64) Action {
	a := Action{Round: c.round, Kind: k, Node: node, Reason: reason}
	c.cooldownUntil[k] = c.round + cooldown
	c.actions = append(c.actions, a)
	c.last = a
	c.hasLast = true
	c.interlock = ""
	return a
}

// Observe feeds one round of signals and returns the action to apply,
// if any. At most one action fires per round; replacement outranks
// scale-out, which outranks shed transitions, which outrank scale-in.
// When no action is pending the call is allocation-free.
func (c *Controller) Observe(s Signals) (Action, bool) {
	c.round = s.Round
	c.window.Observe(s.Rejects)

	// Hysteresis counters advance every round regardless of interlocks,
	// so a blocked decision fires as soon as the lock clears instead of
	// re-accumulating from zero.
	if c.window.Sum() >= c.cfg.ScaleOutRejects {
		c.overFor++
	} else {
		c.overFor = 0
	}
	idle := c.window.Sum() == 0 && s.QueueDepth == 0 &&
		s.Capacity > 0 && float64(s.Active) < c.cfg.ScaleInUtil*float64(s.Capacity)
	if idle {
		c.underFor++
	} else {
		c.underFor = 0
	}
	if s.QueueDepth >= c.cfg.ShedQueue {
		c.shedHiFor++
	} else {
		c.shedHiFor = 0
	}
	if s.QueueDepth <= c.cfg.ShedExit {
		c.shedLoFor++
	} else {
		c.shedLoFor = 0
	}

	// 1. Replace a confirmed node loss from the spare budget.
	if s.NodeLosses > c.replaced {
		switch {
		case c.replaced >= c.cfg.Spares:
			c.interlock = lockSpares
		case s.Reconfiguring:
			c.interlock = lockReconfig
		case !c.cool(Replace, s.Round):
			c.interlock = lockCooldown
		default:
			c.replaced++
			return c.fire(Replace, -1, "node loss confirmed", c.cfg.ReplaceCooldown), true
		}
	}

	// 2. Scale out on sustained rejects.
	if c.overFor >= c.cfg.ScaleOutHold {
		switch {
		case s.ActiveNodes >= c.cfg.MaxNodes:
			c.interlock = lockBudget
		case s.Reconfiguring:
			c.interlock = lockReconfig
		case !c.cool(ScaleOut, s.Round):
			c.interlock = lockCooldown
		default:
			c.overFor = 0
			c.joins++
			return c.fire(ScaleOut, -1, "sustained rejects", c.cfg.ScaleOutCooldown), true
		}
	}

	// 3. Shed-mode transitions: admission-level, so they are exempt
	// from the reconfiguration interlock — degradation must be able to
	// engage exactly when the cluster is busiest.
	if !c.shedding && c.shedHiFor >= c.cfg.ShedHold {
		c.shedding = true
		return c.fire(ShedStart, -1, "backlog over shed threshold", 0), true
	}
	if c.shedding && c.shedLoFor >= c.cfg.ShedHold {
		c.shedding = false
		return c.fire(ShedStop, -1, "backlog cleared", 0), true
	}

	// 4. Scale in off-peak.
	if c.underFor >= c.cfg.ScaleInHold {
		switch {
		case s.NodeLosses > c.replaced || s.Rebuilding:
			// Abort, don't defer: shrinking while degraded is never right.
			c.underFor = 0
			if s.Rebuilding {
				c.interlock = lockRebuild
			} else {
				c.interlock = lockFailure
			}
		case s.Reconfiguring:
			c.interlock = lockReconfig
		case s.ActiveNodes <= c.cfg.MinNodes:
			c.interlock = lockFloor
		case s.DrainCandidate < 0:
			c.interlock = lockNoTarget
		case !c.cool(ScaleIn, s.Round):
			c.interlock = lockCooldown
		default:
			c.underFor = 0
			return c.fire(ScaleIn, s.DrainCandidate, "sustained idle capacity", c.cfg.ScaleInCooldown), true
		}
	}

	return Action{}, false
}

// Status is a STATS-friendly snapshot.
type Status struct {
	// Mode is "steady" or "shedding".
	Mode string
	// Actions is the total number of actions fired.
	Actions int
	// Last is the most recent action ("none" before the first).
	Last string
	// Cooldown is the largest remaining per-kind cooldown in rounds.
	Cooldown int64
	// Interlock is why the most recent armed decision was suppressed
	// ("" when nothing was).
	Interlock string
}

// Status reports the controller's externally visible state.
func (c *Controller) Status() Status {
	st := Status{Mode: "steady", Actions: len(c.actions), Last: "none", Interlock: c.interlock}
	if c.shedding {
		st.Mode = "shedding"
	}
	if c.hasLast {
		st.Last = c.last.String()
	}
	for k := Kind(0); k < numKinds; k++ {
		if rem := c.cooldownUntil[k] - c.round; rem > st.Cooldown {
			st.Cooldown = rem
		}
	}
	return st
}

// TraceString renders the full action trace, one line per action — the
// byte-identical replay artifact the determinism tests compare.
func TraceString(actions []Action) string {
	out := ""
	for _, a := range actions {
		out += a.String() + "\n"
	}
	return out
}
