// Package sched implements the round mechanics of §3: per-disk service
// accounting within a round, C-SCAN ordering of the round's block fetches,
// and the round clock. The admission layer guarantees that no disk is ever
// asked for more than q blocks in a round; this package is where that
// guarantee is enforced and audited at the data path.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"ftcms/internal/diskmodel"
	"ftcms/internal/layout"
	"ftcms/internal/units"
)

// Engine tracks rounds and per-disk block budgets.
type Engine struct {
	d, q  int
	disk  diskmodel.Parameters
	block units.Bits

	round int64
	reads []int
	// Overflows counts charges beyond a disk's q budget across the run —
	// each one is a deadline miss at the data path.
	Overflows int64
}

// NewEngine creates the round engine for d disks with per-round budget q
// and block size b.
func NewEngine(d, q int, disk diskmodel.Parameters, block units.Bits) (*Engine, error) {
	if d < 1 {
		return nil, errors.New("sched: need at least one disk")
	}
	if q < 1 {
		return nil, fmt.Errorf("sched: q=%d must be positive", q)
	}
	if block <= 0 {
		return nil, errors.New("sched: block size must be positive")
	}
	if !disk.SatisfiesEquation1(q, block) {
		return nil, fmt.Errorf("sched: q=%d blocks of %v violate Equation 1", q, block)
	}
	return &Engine{d: d, q: q, disk: disk, block: block, reads: make([]int, d)}, nil
}

// Round returns the current round number.
func (e *Engine) Round() int64 { return e.round }

// RoundDuration returns the wall-clock length of one round, b/r_p.
func (e *Engine) RoundDuration() units.Duration { return e.disk.RoundDuration(e.block) }

// Budget returns q.
func (e *Engine) Budget() int { return e.q }

// BeginRound advances the round clock and clears the per-disk ledgers.
func (e *Engine) BeginRound() {
	e.round++
	for i := range e.reads {
		e.reads[i] = 0
	}
}

// Charge records one block read on a disk during the current round. It
// reports false — and counts an overflow — when the disk's q budget is
// already exhausted; the caller decides whether to proceed anyway (a
// late, deadline-missing read) or drop.
func (e *Engine) Charge(disk int) bool {
	if disk < 0 || disk >= e.d {
		panic(fmt.Sprintf("sched: disk %d out of range [0, %d)", disk, e.d))
	}
	e.reads[disk]++
	if e.reads[disk] > e.q {
		e.Overflows++
		return false
	}
	return true
}

// ChargeN records n block reads on a disk at once, with overflow
// accounting identical to n successive Charge calls: every charge
// beyond the q budget counts one overflow. The sharded tick uses it to
// merge per-shard read tallies at the round barrier — the final ledger
// and overflow count are bit-identical to the sequential interleaving,
// because both depend only on per-disk totals.
func (e *Engine) ChargeN(disk, n int) {
	if n <= 0 {
		return
	}
	if disk < 0 || disk >= e.d {
		panic(fmt.Sprintf("sched: disk %d out of range [0, %d)", disk, e.d))
	}
	before := e.reads[disk]
	after := before + n
	e.reads[disk] = after
	if after > e.q {
		from := before
		if from < e.q {
			from = e.q
		}
		e.Overflows += int64(after - from)
	}
}

// AddDisk widens the engine by one disk with a zero ledger for the
// current round, preserving the round clock and overflow count. The
// re-layout path calls it at the instant the wider layout table flips
// in, so budget auditing is continuous across the geometry change.
func (e *Engine) AddDisk() {
	e.d++
	e.reads = append(e.reads, 0)
}

// Disks returns the number of disks the engine budgets for.
func (e *Engine) Disks() int { return e.d }

// Load returns the blocks charged to a disk this round.
func (e *Engine) Load(disk int) int { return e.reads[disk] }

// PeakLoad returns the highest per-disk load this round.
func (e *Engine) PeakLoad() int {
	peak := 0
	for _, r := range e.reads {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// ServiceTime returns the worst-case time the round's heaviest disk needs
// (the left side of Equation 1 at the current peak load).
func (e *Engine) ServiceTime() units.Duration {
	return e.disk.RoundBudgetUsed(e.PeakLoad(), e.block)
}

// CSCANOrder sorts a disk's fetches for one round into a single ascending
// elevator sweep by block number, in place, mirroring the C-SCAN policy
// the paper assumes (§3, [SG94]).
func CSCANOrder(fetches []layout.BlockAddr) {
	sort.Slice(fetches, func(i, j int) bool {
		if fetches[i].Disk != fetches[j].Disk {
			return fetches[i].Disk < fetches[j].Disk
		}
		return fetches[i].Block < fetches[j].Block
	})
}
