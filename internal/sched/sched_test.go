package sched

import (
	"testing"

	"ftcms/internal/diskmodel"
	"ftcms/internal/layout"
	"ftcms/internal/units"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(8, 10, diskmodel.Default(), 2*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	d := diskmodel.Default()
	if _, err := NewEngine(0, 10, d, units.MB); err == nil {
		t.Error("accepted zero disks")
	}
	if _, err := NewEngine(8, 0, d, units.MB); err == nil {
		t.Error("accepted q=0")
	}
	if _, err := NewEngine(8, 10, d, 0); err == nil {
		t.Error("accepted zero block")
	}
	// q=29 with a tiny block violates Equation 1.
	if _, err := NewEngine(8, 29, d, 100*units.KB); err == nil {
		t.Error("accepted Equation-1-violating configuration")
	}
}

func TestChargeBudget(t *testing.T) {
	e := newEngine(t)
	e.BeginRound()
	for i := 0; i < 10; i++ {
		if !e.Charge(3) {
			t.Fatalf("charge %d refused within budget", i)
		}
	}
	if e.Charge(3) {
		t.Fatal("11th charge accepted beyond q=10")
	}
	if e.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", e.Overflows)
	}
	if e.Load(3) != 11 || e.Load(2) != 0 {
		t.Fatalf("loads: %d/%d", e.Load(3), e.Load(2))
	}
	if e.PeakLoad() != 11 {
		t.Fatalf("PeakLoad = %d", e.PeakLoad())
	}
	// New round clears ledgers but keeps the overflow history.
	e.BeginRound()
	if e.Load(3) != 0 || e.Overflows != 1 {
		t.Fatal("BeginRound cleared wrong state")
	}
	if e.Round() != 2 {
		t.Fatalf("Round = %d", e.Round())
	}
}

func TestChargePanicsOutOfRange(t *testing.T) {
	e := newEngine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Charge(8)
}

func TestRoundDuration(t *testing.T) {
	e := newEngine(t)
	want := diskmodel.Default().RoundDuration(2 * units.MB)
	if got := e.RoundDuration(); got != want {
		t.Fatalf("RoundDuration = %v, want %v", got, want)
	}
	if e.Budget() != 10 {
		t.Fatalf("Budget = %d", e.Budget())
	}
}

func TestServiceTimeWithinRound(t *testing.T) {
	e := newEngine(t)
	e.BeginRound()
	for i := 0; i < 10; i++ {
		e.Charge(i % 8)
	}
	if e.ServiceTime() > e.RoundDuration() {
		t.Fatalf("service time %v exceeds round %v within budget", e.ServiceTime(), e.RoundDuration())
	}
}

func TestCSCANOrder(t *testing.T) {
	fetches := []layout.BlockAddr{
		{Disk: 1, Block: 9},
		{Disk: 0, Block: 5},
		{Disk: 1, Block: 2},
		{Disk: 0, Block: 1},
	}
	CSCANOrder(fetches)
	want := []layout.BlockAddr{
		{Disk: 0, Block: 1},
		{Disk: 0, Block: 5},
		{Disk: 1, Block: 2},
		{Disk: 1, Block: 9},
	}
	for i := range want {
		if fetches[i] != want[i] {
			t.Fatalf("order %v, want %v", fetches, want)
		}
	}
}
