package admission

import (
	"math/rand"
	"testing"

	"ftcms/internal/bibd"
	"ftcms/internal/pgt"
)

func TestNewStaticValidation(t *testing.T) {
	if _, err := NewStatic(0, 3, 10, 2); err == nil {
		t.Error("accepted d=0")
	}
	if _, err := NewStatic(7, 0, 10, 2); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewStatic(7, 3, 2, 2); err == nil {
		t.Error("accepted q <= f")
	}
	if _, err := NewStatic(7, 3, 2, -1); err == nil {
		t.Error("accepted negative f")
	}
}

func TestStaticDiskCap(t *testing.T) {
	// q=5, f=2: at most 3 clips per disk.
	s, err := NewStatic(4, 3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []Ticket
	for i := 0; i < 3; i++ {
		// Distinct classes so the cell cap (f=2) does not interfere.
		tk, ok := s.Admit(0, 0, i)
		if !ok {
			t.Fatalf("admission %d refused", i)
		}
		tickets = append(tickets, tk)
	}
	if _, ok := s.Admit(0, 0, 0); ok {
		t.Fatal("4th clip on disk 0 admitted; disk cap is 3")
	}
	// Other disks unaffected.
	if !s.CanAdmit(0, 1, 0) {
		t.Fatal("disk 1 should accept")
	}
	// Release one; disk 0 opens up.
	s.Release(tickets[0])
	if !s.CanAdmit(0, 0, 0) {
		t.Fatal("disk 0 should accept after release")
	}
	if s.Active() != 2 {
		t.Fatalf("Active = %d, want 2", s.Active())
	}
	if s.Capacity() != 12 {
		t.Fatalf("Capacity = %d, want 12", s.Capacity())
	}
}

func TestStaticCellCap(t *testing.T) {
	// f=2: at most 2 clips per (disk, class).
	s, err := NewStatic(4, 3, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Admit(0, 2, 1); !ok {
			t.Fatalf("admission %d refused", i)
		}
	}
	if _, ok := s.Admit(0, 2, 1); ok {
		t.Fatal("3rd clip in cell admitted; cell cap is 2")
	}
	// Same disk, different class: fine.
	if !s.CanAdmit(0, 2, 0) {
		t.Fatal("different class should be admissible")
	}
}

// TestStaticRotation: the caps follow the clips as rounds advance — a
// clip admitted on disk 0 at round 0 occupies disk 2 at round 2.
func TestStaticRotation(t *testing.T) {
	d, m := 4, 3
	s, err := NewStatic(d, m, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Admit(0, 0, 0); !ok {
		t.Fatal("refused")
	}
	for now := int64(0); now < 30; now++ {
		wantDisk := int(now) % d
		wantClass := (int(now) / d) % m
		for i := 0; i < d; i++ {
			want := 0
			if i == wantDisk {
				want = 1
			}
			if got := s.DiskLoad(now, i); got != want {
				t.Fatalf("round %d: DiskLoad(%d) = %d, want %d", now, i, got, want)
			}
		}
		if got := s.CellLoad(now, wantDisk, wantClass); got != 1 {
			t.Fatalf("round %d: CellLoad = %d, want 1", now, got)
		}
		// The class the clip is NOT in is empty.
		if got := s.CellLoad(now, wantDisk, (wantClass+1)%m); got != 0 {
			t.Fatalf("round %d: foreign CellLoad = %d, want 0", now, got)
		}
	}
}

// TestStaticLateAdmission: admissions at different rounds interact
// correctly — two clips that will collide on the same (disk, class) phase
// share the cell cap.
func TestStaticLateAdmission(t *testing.T) {
	d, m := 4, 3
	s, err := NewStatic(d, m, 10, 1) // f=1: one clip per cell
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Admit(0, 0, 0); !ok {
		t.Fatal("refused")
	}
	// At round 5 the first clip sits at disk 1, class 1. A new clip
	// starting exactly there must be refused (cell cap 1)...
	if s.CanAdmit(5, 1, 1) {
		t.Fatal("phase collision not detected")
	}
	// ...but the same (disk, class) start at a different round is a
	// different phase.
	if !s.CanAdmit(6, 1, 1) {
		t.Fatal("non-colliding admission refused")
	}
}

func TestStaticPanics(t *testing.T) {
	s, _ := NewStatic(4, 3, 5, 2)
	mustPanic(t, func() { s.Admit(0, 4, 0) })
	mustPanic(t, func() { s.Admit(0, 0, 3) })
	mustPanic(t, func() { s.Release(Ticket{phase: 0, row: -1}) }) // nothing admitted
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestStaticRandomInvariant: under random admit/release traffic across
// random rounds, per-disk load never exceeds q−f and per-cell load never
// exceeds f — checked exhaustively every step.
func TestStaticRandomInvariant(t *testing.T) {
	d, m, q, f := 7, 3, 9, 3
	s, err := NewStatic(d, m, q, f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var tickets []Ticket
	for step := 0; step < 3000; step++ {
		now := int64(step / 3)
		if rng.Intn(3) < 2 || len(tickets) == 0 {
			tk, ok := s.Admit(now, rng.Intn(d), rng.Intn(m))
			if ok {
				tickets = append(tickets, tk)
			}
		} else {
			i := rng.Intn(len(tickets))
			s.Release(tickets[i])
			tickets = append(tickets[:i], tickets[i+1:]...)
		}
		for disk := 0; disk < d; disk++ {
			if got := s.DiskLoad(now, disk); got > q-f {
				t.Fatalf("step %d: disk %d load %d > q−f=%d", step, disk, got, q-f)
			}
			for class := 0; class < m; class++ {
				if got := s.CellLoad(now, disk, class); got > f {
					t.Fatalf("step %d: cell (%d,%d) load %d > f=%d", step, disk, class, got, f)
				}
			}
		}
	}
}

// --- Dynamic ---

func fanoPGT(t *testing.T) *pgt.Table {
	t.Helper()
	des, err := bibd.New(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := pgt.New(des)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(nil, 5); err == nil {
		t.Error("accepted nil PGT")
	}
	if _, err := NewDynamic(fanoPGT(t), 0); err == nil {
		t.Error("accepted q=0")
	}
}

// TestDynamicCondition: the §5.2 condition holds for every disk after any
// sequence of admissions, by construction.
func TestDynamicCondition(t *testing.T) {
	tab := fanoPGT(t)
	q := 6
	dy, err := NewDynamic(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	admitted := 0
	var tickets []Ticket
	for step := 0; step < 800; step++ {
		now := int64(step / 2)
		if rng.Intn(4) < 3 || len(tickets) == 0 {
			tk, ok := dy.Admit(now, rng.Intn(7), rng.Intn(3))
			if ok {
				tickets = append(tickets, tk)
				admitted++
			}
		} else {
			i := rng.Intn(len(tickets))
			dy.Release(tickets[i])
			tickets = append(tickets[:i], tickets[i+1:]...)
		}
		for disk := 0; disk < 7; disk++ {
			if load := dy.WorstCaseFailureLoad(now, disk); load > q {
				t.Fatalf("step %d: disk %d worst-case failure load %d > q=%d", step, disk, load, q)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("no admissions at all")
	}
}

// TestDynamicAdmitsMoreThanStaticWhenSkewed: the motivating §5 scenario —
// with static f, a row-skewed workload blocks early even though disk
// bandwidth remains; dynamic reservation keeps admitting.
func TestDynamicAdmitsMoreThanStaticWhenSkewed(t *testing.T) {
	tab := fanoPGT(t)
	q := 9
	// Static with f=1 (r=3, q−f=8: r·f >= q−f fails but that only affects
	// capacity, not safety; use f=2 so 3·2 >= 7).
	f := 2
	st, err := NewStatic(7, 3, q, f)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := NewDynamic(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	// All requests target disk 0, row 0 at round 0 — maximal skew.
	staticCount, dynamicCount := 0, 0
	for i := 0; i < q; i++ {
		if _, ok := st.Admit(0, 0, 0); ok {
			staticCount++
		}
		if _, ok := dy.Admit(0, 0, 0); ok {
			dynamicCount++
		}
	}
	if staticCount != f {
		t.Fatalf("static admitted %d, want f=%d (row cap binds)", staticCount, f)
	}
	if dynamicCount <= staticCount {
		t.Fatalf("dynamic admitted %d, static %d: dynamic should admit more under skew", dynamicCount, staticCount)
	}
}

func TestDynamicRelease(t *testing.T) {
	dy, err := NewDynamic(fanoPGT(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	tk, ok := dy.Admit(0, 2, 1)
	if !ok {
		t.Fatal("refused")
	}
	if dy.Active() != 1 || dy.DiskLoad(0, 2) != 1 {
		t.Fatal("load accounting wrong")
	}
	dy.Release(tk)
	if dy.Active() != 0 || dy.DiskLoad(0, 2) != 0 {
		t.Fatal("release accounting wrong")
	}
	mustPanic(t, func() { dy.Release(tk) })
	mustPanic(t, func() { dy.Admit(0, 9, 0) })
	mustPanic(t, func() { dy.Admit(0, 0, 5) })
}

// --- Simple ---

func TestSimple(t *testing.T) {
	if _, err := NewSimple(0, 3); err == nil {
		t.Error("accepted zero units")
	}
	if _, err := NewSimple(4, 0); err == nil {
		t.Error("accepted q=0")
	}
	s, err := NewSimple(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 8 || s.MaxPerRound() != 2 {
		t.Fatalf("capacity %d / q %d", s.Capacity(), s.MaxPerRound())
	}
	var tk Ticket
	for i := 0; i < 2; i++ {
		var ok bool
		tk, ok = s.Admit(0, 1)
		if !ok {
			t.Fatalf("admission %d refused", i)
		}
	}
	if _, ok := s.Admit(0, 1); ok {
		t.Fatal("over-admitted unit")
	}
	if !s.CanAdmit(0, 2) {
		t.Fatal("other unit should accept")
	}
	// Rotation: at round 1 the clips sit at unit 2.
	if got := s.UnitLoad(1, 2); got != 2 {
		t.Fatalf("UnitLoad(1, 2) = %d, want 2", got)
	}
	if got := s.UnitLoad(1, 1); got != 0 {
		t.Fatalf("UnitLoad(1, 1) = %d, want 0", got)
	}
	s.Release(tk)
	if s.Active() != 1 {
		t.Fatalf("Active = %d", s.Active())
	}
	mustPanic(t, func() { s.Admit(0, 7) })
}

// --- Queue ---

func TestQueueFIFO(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Admit everything: order must be FIFO.
	var got []int
	q.Drain(func(x int) bool { got = append(got, x); return true })
	for i, x := range got {
		if x != i {
			t.Fatalf("drain order %v", got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d", q.Len())
	}
}

func TestQueueHeadOfLineBlocking(t *testing.T) {
	var q Queue[int] // Bypass = 0
	q.Push(100)      // unadmittable head
	q.Push(1)
	admitted := q.Drain(func(x int) bool { return x < 10 })
	if admitted != 0 {
		t.Fatalf("admitted %d past a blocked head with no bypass", admitted)
	}
	if head, _ := q.Peek(); head != 100 {
		t.Fatalf("head = %d", head)
	}
}

func TestQueueBypass(t *testing.T) {
	q := Queue[int]{Bypass: 2}
	q.Push(100) // blocked
	q.Push(1)
	q.Push(200) // blocked
	q.Push(2)
	q.Push(3) // beyond the bypass window once two refusals happened
	admitted := q.Drain(func(x int) bool { return x < 10 })
	// Head refused (1 refusal), 1 admitted, 200 refused (2 refusals),
	// 2 admitted, 3 tried (refusals = 2 <= Bypass) and admitted.
	if admitted != 3 {
		t.Fatalf("admitted %d, want 3", admitted)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (the two blocked)", q.Len())
	}
}

func TestQueuePeekEmpty(t *testing.T) {
	var q Queue[string]
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty reported ok")
	}
}

func TestQueueExpireHead(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	// Items pushed in order: an age cutoff is a head prefix.
	n := q.ExpireHead(func(x int) bool { return x < 3 })
	if n != 3 {
		t.Fatalf("expired %d, want 3", n)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if head, _ := q.Peek(); head != 3 {
		t.Fatalf("head = %d, want 3", head)
	}
	// Survivors keep FIFO order.
	var got []int
	q.Drain(func(x int) bool { got = append(got, x); return true })
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("post-expiry order %v", got)
	}
	// Empty queue: no-op.
	if n := q.ExpireHead(func(int) bool { return true }); n != 0 {
		t.Fatalf("expired %d from empty queue", n)
	}
}

// TestStaticFailureLoadBound proves the §4.2 failure-load theorem at the
// controller level: for any admitted population and any failed disk, the
// extra reconstruction reads a surviving disk receives are bounded by
// overlap·f, where overlap is the PGT's max column intersection (exactly
// 1 for λ=1 designs — making q−f+f = q the hard guarantee; ≤2 for the
// rotational d=32 approximations).
func TestStaticFailureLoadBound(t *testing.T) {
	for _, cfg := range []struct{ d, p int }{{7, 3}, {32, 2}, {32, 4}, {32, 8}, {32, 16}} {
		des, err := bibd.New(cfg.d, cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := pgt.New(des)
		if err != nil {
			t.Fatal(err)
		}
		overlap, err := tab.CheckProperties()
		if err != nil {
			t.Fatal(err)
		}
		q, f := 20, 4
		st, err := NewStatic(cfg.d, tab.R, q, f)
		if err != nil {
			t.Fatal(err)
		}
		// Fill with random admissions.
		rng := rand.New(rand.NewSource(int64(cfg.d*100 + cfg.p)))
		for i := 0; i < 5000; i++ {
			st.Admit(int64(i%17), rng.Intn(cfg.d), rng.Intn(tab.R))
		}
		now := int64(16)
		for failed := 0; failed < cfg.d; failed++ {
			extra := make([]int, cfg.d)
			for row := 0; row < tab.R; row++ {
				n := st.CellLoad(now, failed, row)
				if n == 0 {
					continue
				}
				for _, m := range tab.Disks(tab.Set(row, failed)) {
					if m != failed {
						extra[m] += n
					}
				}
			}
			for i := 0; i < cfg.d; i++ {
				if i == failed {
					continue
				}
				if extra[i] > overlap*f {
					t.Fatalf("(d=%d,p=%d): disk %d gets %d extra reads for failure of %d, bound %d·%d",
						cfg.d, cfg.p, i, extra[i], failed, overlap, f)
				}
				if overlap == 1 && st.DiskLoad(now, i)+extra[i] > q {
					t.Fatalf("(d=%d,p=%d): exact design exceeded q", cfg.d, cfg.p)
				}
			}
		}
	}
}
