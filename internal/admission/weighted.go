package admission

import (
	"errors"
	"fmt"

	"ftcms/internal/units"
)

// Weighted generalizes the per-disk cap from "q streams" to a service-time
// budget, admitting streams of heterogeneous rates: a stream whose blocks
// take cost seconds of worst-case disk service per round consumes that
// much of its current disk's round budget. With a homogeneous workload it
// degenerates to Simple (cost = roundBudget/q each).
//
// The phase argument of the homogeneous controllers carries over
// unchanged: all streams advance one disk per round, so per-phase
// *accumulated cost* rotates rather than mixes, and a single admission-
// time check holds forever.
type Weighted struct {
	d      int
	budget units.Duration
	// load[c] is the accumulated per-round service cost of streams at
	// disk phase c.
	load   []units.Duration
	active int
}

// NewWeighted builds the controller for d disks with the given per-disk
// per-round service budget (typically round duration minus the C-SCAN
// seek allowance and any contingency reserve).
func NewWeighted(d int, budget units.Duration) (*Weighted, error) {
	if d < 1 {
		return nil, errors.New("admission: need at least one disk")
	}
	if budget <= 0 {
		return nil, errors.New("admission: budget must be positive")
	}
	return &Weighted{d: d, budget: budget, load: make([]units.Duration, d)}, nil
}

func (w *Weighted) phase(now int64, startDisk int) int {
	if startDisk < 0 || startDisk >= w.d {
		panic(fmt.Sprintf("admission: start disk %d out of range [0, %d)", startDisk, w.d))
	}
	d := int64(w.d)
	return int(((int64(startDisk)-now)%d + d) % d)
}

// WeightedTicket releases a weighted admission.
type WeightedTicket struct {
	phase int
	cost  units.Duration
}

// CanAdmit reports whether a stream of the given per-round cost starting
// at startDisk fits at round now.
func (w *Weighted) CanAdmit(now int64, startDisk int, cost units.Duration) bool {
	if cost <= 0 {
		panic("admission: non-positive stream cost")
	}
	return w.load[w.phase(now, startDisk)]+cost <= w.budget
}

// Admit admits the stream, returning its release ticket.
func (w *Weighted) Admit(now int64, startDisk int, cost units.Duration) (WeightedTicket, bool) {
	c := w.phase(now, startDisk)
	if cost <= 0 {
		panic("admission: non-positive stream cost")
	}
	if w.load[c]+cost > w.budget {
		return WeightedTicket{}, false
	}
	w.load[c] += cost
	w.active++
	return WeightedTicket{phase: c, cost: cost}, true
}

// Release frees an admitted stream's budget.
func (w *Weighted) Release(t WeightedTicket) {
	if t.phase < 0 || t.phase >= w.d || t.cost <= 0 || w.load[t.phase] < t.cost {
		panic("admission: release of unknown or double-released weighted ticket")
	}
	w.load[t.phase] -= t.cost
	w.active--
}

// Active returns the number of admitted streams.
func (w *Weighted) Active() int { return w.active }

// DiskLoad returns the service cost committed on disk i during round now.
func (w *Weighted) DiskLoad(now int64, i int) units.Duration {
	return w.load[w.phase(now, i)]
}

// Budget returns the per-disk per-round budget.
func (w *Weighted) Budget() units.Duration { return w.budget }
