package admission

// Queue is the pending list of §3: client requests wait here until the
// admission controller accepts them. Service is FIFO with an optional
// bounded bypass window: with Bypass = 0 strictly head-of-line (a blocked
// head blocks everyone — trivially starvation-free), with Bypass = k up
// to k requests behind a blocked head may be tried each round. Bounded
// bypass preserves starvation-freedom: the head's wait is bounded because
// admitted clips eventually complete and release exactly the capacity
// class the head needs (clip positions rotate, they never change class).
//
// [ORS96], which the paper defers admission details to, motivates exactly
// this starvation-free low-response-time design point; the trade-off is
// measured by the E8 ablation benchmark.
type Queue[T any] struct {
	// Bypass is the number of requests behind a blocked head that may be
	// attempted per Drain call. 0 means strict FIFO.
	Bypass int

	items []T
}

// Len returns the number of queued requests.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends a request.
func (q *Queue[T]) Push(item T) { q.items = append(q.items, item) }

// Drain repeatedly offers queued requests to admit, which reports whether
// the request was admitted (and, if so, must have recorded it). Admitted
// requests leave the queue. Per call, scanning stops after the head plus
// Bypass blocked requests have been refused. It returns the number
// admitted.
func (q *Queue[T]) Drain(admit func(T) bool) int {
	admitted := 0
	refused := 0
	i := 0
	for i < len(q.items) && refused <= q.Bypass {
		if admit(q.items[i]) {
			q.items = append(q.items[:i], q.items[i+1:]...)
			admitted++
			continue
		}
		refused++
		i++
	}
	return admitted
}

// ExpireHead removes leading requests for which expired reports true,
// stopping at the first keeper, and returns how many were removed.
// Pushes arrive in nondecreasing arrival order and Drain preserves
// relative order, so the head is always the oldest waiter — a head-only
// scan suffices for an age cutoff and costs O(removed), not O(queue).
func (q *Queue[T]) ExpireHead(expired func(T) bool) int {
	n := 0
	for n < len(q.items) && expired(q.items[n]) {
		n++
	}
	if n > 0 {
		q.items = q.items[:copy(q.items, q.items[n:])]
	}
	return n
}

// Peek returns the head without removing it; ok is false when empty.
func (q *Queue[T]) Peek() (item T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.items[0], true
}
