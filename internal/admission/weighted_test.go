package admission

import (
	"math/rand"
	"testing"

	"ftcms/internal/diskmodel"
	"ftcms/internal/units"
)

func TestNewWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(0, units.Second); err == nil {
		t.Error("accepted zero disks")
	}
	if _, err := NewWeighted(4, 0); err == nil {
		t.Error("accepted zero budget")
	}
}

func TestWeightedBudget(t *testing.T) {
	w, err := NewWeighted(4, units.Second)
	if err != nil {
		t.Fatal(err)
	}
	if w.Budget() != units.Second {
		t.Fatalf("Budget = %v", w.Budget())
	}
	// Three 300 ms streams fit; a fourth does not; a 100 ms one still
	// does.
	var tks []WeightedTicket
	for i := 0; i < 3; i++ {
		tk, ok := w.Admit(0, 1, 300*units.Millisecond)
		if !ok {
			t.Fatalf("admission %d refused", i)
		}
		tks = append(tks, tk)
	}
	if _, ok := w.Admit(0, 1, 300*units.Millisecond); ok {
		t.Fatal("over-budget admission accepted")
	}
	if !w.CanAdmit(0, 1, 100*units.Millisecond) {
		t.Fatal("100 ms stream should fit in the 100 ms remainder")
	}
	// Other disks unaffected.
	if !w.CanAdmit(0, 2, units.Duration(0.9)) {
		t.Fatal("disk 2 should be empty")
	}
	w.Release(tks[0])
	if !w.CanAdmit(0, 1, 300*units.Millisecond) {
		t.Fatal("release did not free budget")
	}
	if w.Active() != 2 {
		t.Fatalf("Active = %d", w.Active())
	}
}

// TestWeightedRotation: committed cost follows the streams across rounds.
func TestWeightedRotation(t *testing.T) {
	w, err := NewWeighted(4, units.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Admit(0, 0, 400*units.Millisecond); !ok {
		t.Fatal("refused")
	}
	for now := int64(0); now < 12; now++ {
		at := int(now) % 4
		for i := 0; i < 4; i++ {
			want := units.Duration(0)
			if i == at {
				want = 400 * units.Millisecond
			}
			if got := w.DiskLoad(now, i); got != want {
				t.Fatalf("round %d disk %d: load %v, want %v", now, i, got, want)
			}
		}
	}
}

// TestWeightedMatchesSimple: homogeneous costs reproduce the Simple
// controller's count cap exactly.
func TestWeightedMatchesSimple(t *testing.T) {
	// Figure-1 disk, 2 Mbit blocks: q from Equation 1, then budget =
	// round − 2 seeks gives the same stream count via per-stream cost.
	p := diskmodel.Default()
	b := units.Bits(2_000_000)
	q := p.MaxClipsPerRound(b)
	budget := p.RoundDuration(b) - 2*p.Seek
	w, err := NewWeighted(1, budget)
	if err != nil {
		t.Fatal(err)
	}
	cost := p.BlockServiceTime(b)
	admitted := 0
	for {
		if _, ok := w.Admit(0, 0, cost); !ok {
			break
		}
		admitted++
		if admitted > q+1 {
			break
		}
	}
	if admitted != q {
		t.Fatalf("weighted admitted %d homogeneous streams, Equation 1 says %d", admitted, q)
	}
}

// TestWeightedMixedRates: heterogeneous streams pack by cost — audio
// streams are ~6x cheaper than video at the same block duration.
func TestWeightedMixedRates(t *testing.T) {
	p := diskmodel.Default()
	roundDur := units.Duration(1) // 1 s rounds
	budget := roundDur - 2*p.Seek
	videoCost := p.BlockServiceTime(units.SizeAtRate(1.5*units.Mbps, roundDur))
	audioCost := p.BlockServiceTime(units.SizeAtRate(256*units.Kbps, roundDur))
	wVideo, _ := NewWeighted(1, budget)
	nVideo := 0
	for {
		if _, ok := wVideo.Admit(0, 0, videoCost); !ok {
			break
		}
		nVideo++
	}
	wAudio, _ := NewWeighted(1, budget)
	nAudio := 0
	for {
		if _, ok := wAudio.Admit(0, 0, audioCost); !ok {
			break
		}
		nAudio++
	}
	if nAudio < 2*nVideo {
		t.Fatalf("audio streams per disk (%d) should far exceed video (%d)", nAudio, nVideo)
	}
}

// TestWeightedRandomInvariant: under random admit/release traffic the
// per-phase load never exceeds the budget.
func TestWeightedRandomInvariant(t *testing.T) {
	w, err := NewWeighted(8, units.Second)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var tks []WeightedTicket
	for step := 0; step < 4000; step++ {
		now := int64(step / 4)
		if rng.Intn(3) < 2 || len(tks) == 0 {
			cost := units.Duration(float64(rng.Intn(200)+10)) * units.Millisecond
			if tk, ok := w.Admit(now, rng.Intn(8), cost); ok {
				tks = append(tks, tk)
			}
		} else {
			i := rng.Intn(len(tks))
			w.Release(tks[i])
			tks = append(tks[:i], tks[i+1:]...)
		}
		for i := 0; i < 8; i++ {
			if w.DiskLoad(now, i) > w.Budget() {
				t.Fatalf("step %d: disk %d over budget", step, i)
			}
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	w, _ := NewWeighted(4, units.Second)
	mustPanic(t, func() { w.Admit(0, 9, units.Millisecond) })
	mustPanic(t, func() { w.Admit(0, 0, 0) })
	mustPanic(t, func() { w.CanAdmit(0, 0, -units.Millisecond) })
	mustPanic(t, func() { w.Release(WeightedTicket{phase: 0, cost: units.Second}) })
}
