// Package admission implements the admission-control algorithms of Özden
// et al. (SIGMOD 1996) for all five fault-tolerant schemes.
//
// All controllers exploit the same rotation structure: every active clip
// reads one block per round from consecutive disks, so the whole
// population of clips shifts by one disk per round, in lockstep. A clip's
// position is therefore determined by an invariant *phase* — its start
// position minus its admission round — and per-position occupancy counts
// never merge or split as rounds advance; they just rotate. That is
// exactly why the paper's admission conditions only need to be checked
// once, at admission time (§4.2 properties 1 and 2), and it lets every
// controller here run in O(1) or O(d·r) per admission with no per-round
// bookkeeping at all.
//
// Concretely, a clip admitted at round T0 with start position e0 (a mixed
// radix pair: disk, plus a row/class that increments when the disk index
// wraps) occupies position (e0 − T0 + T) mod N at round T. Controllers
// count clips per phase class c = (e0 − T0) mod N.
//
// The admission controllers:
//
//   - Static — the §4.2 declustered scheme (cap q−f per disk, f per
//     (disk, PGT row)) and the §6.2 flat pre-fetching scheme (cap q−f per
//     disk, f per (disk, parity-target class)), which share arithmetic
//     with the class modulus M = r or d−(p−1) respectively;
//   - Dynamic — the §5 dynamic reservation scheme (per-disk service count
//     plus the worst contᵢ(j,l) must stay within q);
//   - Simple — the per-data-disk (§6.1, non-clustered) and per-cluster
//     (streaming RAID) cap-q controllers;
//   - Queue — a starvation-free FIFO pending list with optional bounded
//     bypass.
package admission

import (
	"errors"
	"fmt"
)

// Ticket identifies an admitted clip so it can be released. Tickets are
// controller-specific; passing a ticket to a different controller is a
// programming error.
type Ticket struct {
	// phase is the clip's invariant phase class.
	phase int
	// row is used by Dynamic (the super-clip row); -1 otherwise.
	row int
}

// Static enforces the two-level condition shared by the declustered
// (§4.2) and flat pre-fetching (§6.2) schemes:
//
//	(a) clips per disk             <= q − f
//	(b) clips per (disk, class)    <= f
//
// where class is the PGT row (declustered) or the parity-target residue
// level mod (d−(p−1)) (flat). Both disk and class advance in lockstep
// with rounds, so occupancy is tracked per phase in Z_{d·m}.
type Static struct {
	d, m, q, f int
	cell       []int // per phase class in Z_{d·m}
	disk       []int // per disk phase class in Z_d
	active     int
}

// NewStatic builds the controller for d disks, m classes (PGT rows or
// parity-target classes), round capacity q and contingency reservation f.
func NewStatic(d, m, q, f int) (*Static, error) {
	if d < 1 || m < 1 {
		return nil, errors.New("admission: need d >= 1 and m >= 1")
	}
	if f < 0 || q <= f {
		return nil, fmt.Errorf("admission: need 0 <= f < q, got q=%d f=%d", q, f)
	}
	return &Static{
		d: d, m: m, q: q, f: f,
		cell: make([]int, d*m),
		disk: make([]int, d),
	}, nil
}

// phaseOf maps (start disk, start class, admission round) to the
// invariant phase pair.
func (s *Static) phaseOf(now int64, startDisk, startClass int) (cell, disk int) {
	if startDisk < 0 || startDisk >= s.d {
		panic(fmt.Sprintf("admission: start disk %d out of range [0, %d)", startDisk, s.d))
	}
	if startClass < 0 || startClass >= s.m {
		panic(fmt.Sprintf("admission: start class %d out of range [0, %d)", startClass, s.m))
	}
	n := int64(s.d * s.m)
	e0 := int64(startClass*s.d + startDisk)
	cell = int((((e0 - now) % n) + n) % n)
	dd := int64(s.d)
	disk = int(((int64(startDisk)-now)%dd + dd) % dd)
	return cell, disk
}

// CanAdmit reports whether a clip starting at (startDisk, startClass) in
// round now fits both caps.
func (s *Static) CanAdmit(now int64, startDisk, startClass int) bool {
	cell, disk := s.phaseOf(now, startDisk, startClass)
	return s.disk[disk] < s.q-s.f && s.cell[cell] < s.f
}

// Admit admits the clip, returning the release ticket. ok is false when
// the caps reject it.
func (s *Static) Admit(now int64, startDisk, startClass int) (Ticket, bool) {
	cell, disk := s.phaseOf(now, startDisk, startClass)
	if s.disk[disk] >= s.q-s.f || s.cell[cell] >= s.f {
		return Ticket{}, false
	}
	s.cell[cell]++
	s.disk[disk]++
	s.active++
	return Ticket{phase: cell, row: -1}, true
}

// Release frees an admitted clip's capacity.
func (s *Static) Release(t Ticket) {
	if t.phase < 0 || t.phase >= len(s.cell) || s.cell[t.phase] == 0 {
		panic("admission: release of unknown or double-released ticket")
	}
	s.cell[t.phase]--
	s.disk[t.phase%s.d]--
	s.active--
}

// Active returns the number of admitted clips.
func (s *Static) Active() int { return s.active }

// Capacity returns the array-wide concurrent-clip bound, (q−f)·d.
func (s *Static) Capacity() int { return (s.q - s.f) * s.d }

// DiskLoad returns the number of clips reading disk i during round now.
func (s *Static) DiskLoad(now int64, i int) int {
	dd := int64(s.d)
	return s.disk[int(((int64(i)-now)%dd+dd)%dd)]
}

// CellLoad returns the number of clips reading a block of class on disk i
// during round now.
func (s *Static) CellLoad(now int64, i, class int) int {
	cell, _ := s.phaseOf(now, i, class)
	return s.cell[cell]
}

// MaxPerRound returns q, the per-disk per-round block budget.
func (s *Static) MaxPerRound() int { return s.q }

// Reserved returns f.
func (s *Static) Reserved() int { return s.f }
