package admission

import "testing"

// TestRejectWindowRollOff pins the sliding semantics: the sum tracks
// exactly the last W observations, rolling old rounds off one at a time.
func TestRejectWindowRollOff(t *testing.T) {
	w := NewRejectWindow(4)
	if w.Sum() != 0 || w.Observed() != 0 || w.Rate() != 0 {
		t.Fatalf("fresh window not empty: sum=%d observed=%d rate=%v", w.Sum(), w.Observed(), w.Rate())
	}
	pushes := []int{5, 0, 3, 2, 7, 0, 0, 0, 0}
	wantSum := []int{5, 5, 8, 10, 12, 12, 9, 7, 0}
	for i, n := range pushes {
		w.Observe(n)
		if w.Sum() != wantSum[i] {
			t.Fatalf("after push %d (%d): sum %d, want %d", i, n, w.Sum(), wantSum[i])
		}
	}
	if w.Observed() != 4 {
		t.Fatalf("observed %d, want capped at window 4", w.Observed())
	}
}

// TestRejectWindowPartialRate divides by rounds observed, not the window
// width, while the window is still filling.
func TestRejectWindowPartialRate(t *testing.T) {
	w := NewRejectWindow(8)
	w.Observe(4)
	w.Observe(2)
	if got := w.Rate(); got != 3 {
		t.Fatalf("rate over 2 observed rounds = %v, want 3", got)
	}
	for i := 0; i < 8; i++ {
		w.Observe(0)
	}
	if w.Sum() != 0 || w.Rate() != 0 {
		t.Fatalf("fully rolled-off window: sum=%d rate=%v, want 0", w.Sum(), w.Rate())
	}
}

// TestRejectWindowDegenerate covers width clamping and Reset.
func TestRejectWindowDegenerate(t *testing.T) {
	w := NewRejectWindow(0)
	if w.Window() != 1 {
		t.Fatalf("window width %d, want clamped to 1", w.Window())
	}
	w.Observe(9)
	w.Observe(1)
	if w.Sum() != 1 {
		t.Fatalf("width-1 window sum %d, want last push only", w.Sum())
	}
	w.Reset()
	if w.Sum() != 0 || w.Observed() != 0 {
		t.Fatalf("reset window not empty: sum=%d observed=%d", w.Sum(), w.Observed())
	}
}

// TestRejectWindowObserveAllocs keeps Observe off the heap: the
// autopilot's quiescent tick calls it every round.
func TestRejectWindowObserveAllocs(t *testing.T) {
	w := NewRejectWindow(16)
	if n := testing.AllocsPerRun(100, func() { w.Observe(1) }); n != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", n)
	}
}
