package admission

import (
	"errors"
	"fmt"

	"ftcms/internal/pgt"
)

// Dynamic implements the dynamic reservation scheme of §5: no contingency
// bandwidth is pre-reserved; instead, a clip of super-clip SC_l reading
// disk j implicitly reserves one contingency block on every disk (j+δ)
// mod d with δ ∈ Δ_l — the disks holding the other members of its current
// block's parity group. The admission condition (§5.2) is: for every disk
// i, serviceCount(i) + max over (j, l) of contᵢ(j, l) <= q, where
// contᵢ(j, l) counts row-l clips on disk j that reserve on i.
//
// Because all clips advance one disk per round, contᵢ(j, l) at any future
// round is a rotation of the current counts, so the condition holds
// forever once it holds at admission.
//
// The condition is maintained incrementally: admitting or releasing a
// row-l clip at phase c changes the service count only at phase c and
// the contingency terms only at phases c+δ, δ ∈ Δ_l. The controller
// keeps per-phase service totals, a histogram of contributing
// contᵢ(j, l) values, and their running max, so Admit and Release cost
// O(|Δ_l|) instead of rescanning all d phases × r rows.
type Dynamic struct {
	t *pgt.Table
	q int
	// count[l][c]: clips of super-clip row l with disk phase c in Z_d.
	count [][]int
	// deltas[l] lists Δ_l, ascending, normalized to (0, d).
	deltas [][]int
	active int

	// svc[c] = Σ_l count[l][c], the service count of phase c.
	svc []int
	// hist[ci][v] = number of contributing (l, cj) pairs — those with
	// (ci−cj) mod d ∈ Δ_l — whose count[l][cj] currently equals v.
	hist [][]int
	// maxv[ci] = max contributing count at phase ci = maxCont(ci).
	maxv []int
}

// NewDynamic builds the controller over the PGT with per-disk round
// capacity q.
func NewDynamic(t *pgt.Table, q int) (*Dynamic, error) {
	if t == nil {
		return nil, errors.New("admission: nil PGT")
	}
	if q < 1 {
		return nil, fmt.Errorf("admission: q=%d must be positive", q)
	}
	dy := &Dynamic{t: t, q: q}
	dy.count = make([][]int, t.R)
	dy.deltas = make([][]int, t.R)
	pairs := 0
	for l := 0; l < t.R; l++ {
		dy.count[l] = make([]int, t.D)
		dy.deltas[l] = t.Deltas(l)
		pairs += len(dy.deltas[l])
	}
	dy.svc = make([]int, t.D)
	dy.maxv = make([]int, t.D)
	dy.hist = make([][]int, t.D)
	for ci := range dy.hist {
		// Counts never exceed q (the condition caps each phase's service
		// count at q); +2 leaves headroom for transient probes.
		dy.hist[ci] = make([]int, q+2)
		dy.hist[ci][0] = pairs
	}
	return dy, nil
}

// bump adjusts the incremental state for count[l][c0] moving from old to
// old+dir (dir = ±1): the service count at c0 and, at every phase c0+δ
// with δ ∈ Δ_l, the histogram and running max of contributing counts.
func (dy *Dynamic) bump(l, c0, old, dir int) {
	dy.svc[c0] += dir
	d := dy.t.D
	for _, delta := range dy.deltas[l] {
		ci := (c0 + delta) % d
		h := dy.hist[ci]
		h[old]--
		h[old+dir]++
		switch {
		case dir > 0 && old+1 > dy.maxv[ci]:
			dy.maxv[ci] = old + 1
		case dir < 0 && old == dy.maxv[ci] && h[old] == 0:
			v := dy.maxv[ci]
			for v > 0 && h[v] == 0 {
				v--
			}
			dy.maxv[ci] = v
		}
	}
}

// phase maps (start disk, round) to the invariant disk phase.
func (dy *Dynamic) phase(now int64, startDisk int) int {
	if startDisk < 0 || startDisk >= dy.t.D {
		panic(fmt.Sprintf("admission: start disk %d out of range [0, %d)", startDisk, dy.t.D))
	}
	d := int64(dy.t.D)
	return int(((int64(startDisk)-now)%d + d) % d)
}

// serviceCount returns the clips reading disk phase c (all rows).
func (dy *Dynamic) serviceCount(c int) int { return dy.svc[c] }

// maxCont returns max over (j, l) with (cᵢ−j) ∈ Δ_l of count[l][j], all in
// phase space for disk phase ci — an O(1) read of the maintained max.
func (dy *Dynamic) maxCont(ci int) int { return dy.maxv[ci] }

// CanAdmit reports whether a clip of super-clip row starting at startDisk
// can be admitted at round now without ever violating the §5.2 condition.
// The condition already holds at every phase for the admitted population
// (admission invariant), and one more row-`row` clip at phase c changes
// the service count only at c and the contingency max only at phases
// c+δ, δ ∈ Δ_row — so only those |Δ_row|+1 phases need checking.
func (dy *Dynamic) CanAdmit(now int64, startDisk, row int) bool {
	if row < 0 || row >= dy.t.R {
		panic(fmt.Sprintf("admission: row %d out of range [0, %d)", row, dy.t.R))
	}
	c := dy.phase(now, startDisk)
	if dy.svc[c]+1+dy.maxv[c] > dy.q {
		return false
	}
	nc := dy.count[row][c] + 1
	d := dy.t.D
	for _, delta := range dy.deltas[row] {
		ci := (c + delta) % d
		m := dy.maxv[ci]
		if nc > m {
			m = nc
		}
		if dy.svc[ci]+m > dy.q {
			return false
		}
	}
	return true
}

// Admit admits the clip if the condition allows.
func (dy *Dynamic) Admit(now int64, startDisk, row int) (Ticket, bool) {
	if !dy.CanAdmit(now, startDisk, row) {
		return Ticket{}, false
	}
	c := dy.phase(now, startDisk)
	dy.bump(row, c, dy.count[row][c], +1)
	dy.count[row][c]++
	dy.active++
	return Ticket{phase: c, row: row}, true
}

// Release frees an admitted clip's capacity.
func (dy *Dynamic) Release(t Ticket) {
	if t.row < 0 || t.row >= dy.t.R || t.phase < 0 || t.phase >= dy.t.D || dy.count[t.row][t.phase] == 0 {
		panic("admission: release of unknown or double-released ticket")
	}
	dy.bump(t.row, t.phase, dy.count[t.row][t.phase], -1)
	dy.count[t.row][t.phase]--
	dy.active--
}

// Active returns the number of admitted clips.
func (dy *Dynamic) Active() int { return dy.active }

// MaxPerRound returns q.
func (dy *Dynamic) MaxPerRound() int { return dy.q }

// DiskLoad returns the clips reading disk i during round now.
func (dy *Dynamic) DiskLoad(now int64, i int) int {
	return dy.serviceCount(dy.phase(now, i))
}

// WorstCaseFailureLoad returns, for disk i at round now, the §5.2 bound
// serviceCount(i) + max contᵢ(j,l): the blocks disk i would serve in the
// worst single-disk failure. Always <= q for admitted populations.
func (dy *Dynamic) WorstCaseFailureLoad(now int64, i int) int {
	c := dy.phase(now, i)
	return dy.serviceCount(c) + dy.maxCont(c)
}

// Simple is the single-cap controller used by pre-fetching with parity
// disks (§6.1: clips per data disk <= q), the non-clustered baseline
// (§7.4: same) and streaming RAID (§7.3: clips per cluster <= q, with
// units = clusters instead of disks). Clips advance one unit per round,
// so occupancy is per phase in Z_units.
type Simple struct {
	units, q int
	count    []int
	active   int
}

// NewSimple builds a controller over the given number of rotation units
// (data disks or clusters) with cap q per unit per round.
func NewSimple(units, q int) (*Simple, error) {
	if units < 1 {
		return nil, errors.New("admission: need at least one unit")
	}
	if q < 1 {
		return nil, fmt.Errorf("admission: q=%d must be positive", q)
	}
	return &Simple{units: units, q: q, count: make([]int, units)}, nil
}

func (s *Simple) phase(now int64, start int) int {
	if start < 0 || start >= s.units {
		panic(fmt.Sprintf("admission: start unit %d out of range [0, %d)", start, s.units))
	}
	u := int64(s.units)
	return int(((int64(start)-now)%u + u) % u)
}

// CanAdmit reports whether a clip starting at unit start fits at round
// now.
func (s *Simple) CanAdmit(now int64, start int) bool {
	return s.count[s.phase(now, start)] < s.q
}

// Admit admits the clip if the unit has capacity.
func (s *Simple) Admit(now int64, start int) (Ticket, bool) {
	c := s.phase(now, start)
	if s.count[c] >= s.q {
		return Ticket{}, false
	}
	s.count[c]++
	s.active++
	return Ticket{phase: c, row: -1}, true
}

// Release frees an admitted clip's capacity.
func (s *Simple) Release(t Ticket) {
	if t.phase < 0 || t.phase >= s.units || s.count[t.phase] == 0 {
		panic("admission: release of unknown or double-released ticket")
	}
	s.count[t.phase]--
	s.active--
}

// Active returns the number of admitted clips.
func (s *Simple) Active() int { return s.active }

// Capacity returns units·q.
func (s *Simple) Capacity() int { return s.units * s.q }

// UnitLoad returns the clips served by unit i during round now.
func (s *Simple) UnitLoad(now int64, i int) int {
	return s.count[s.phase(now, i)]
}

// MaxPerRound returns q.
func (s *Simple) MaxPerRound() int { return s.q }

// RowDiskLoad returns the number of super-clip-row clips reading disk i
// during round now — the failure accounting in the simulator needs the
// per-row breakdown to attribute reconstruction reads to parity-group
// member disks.
func (dy *Dynamic) RowDiskLoad(now int64, i, row int) int {
	if row < 0 || row >= dy.t.R {
		panic(fmt.Sprintf("admission: row %d out of range [0, %d)", row, dy.t.R))
	}
	return dy.count[row][dy.phase(now, i)]
}
