package admission

import (
	"math/rand"
	"testing"

	"ftcms/internal/bibd"
	"ftcms/internal/pgt"
)

// refDynamic is a deliberately naive implementation of the §5.2 condition
// — full rescans of every phase × row on every query — used to pin the
// incremental controller's O(|Δ_l|) fast path.
type refDynamic struct {
	t        *pgt.Table
	q        int
	count    [][]int
	deltaHas [][]bool
}

func newRefDynamic(t *pgt.Table, q int) *refDynamic {
	r := &refDynamic{t: t, q: q}
	r.count = make([][]int, t.R)
	r.deltaHas = make([][]bool, t.R)
	for l := 0; l < t.R; l++ {
		r.count[l] = make([]int, t.D)
		r.deltaHas[l] = make([]bool, t.D)
		for _, delta := range t.Deltas(l) {
			r.deltaHas[l][delta] = true
		}
	}
	return r
}

func (r *refDynamic) serviceCount(c int) int {
	total := 0
	for l := 0; l < r.t.R; l++ {
		total += r.count[l][c]
	}
	return total
}

func (r *refDynamic) maxCont(ci int) int {
	d := r.t.D
	best := 0
	for l := 0; l < r.t.R; l++ {
		for cj := 0; cj < d; cj++ {
			if r.count[l][cj] <= best {
				continue
			}
			delta := ((ci-cj)%d + d) % d
			if delta != 0 && r.deltaHas[l][delta] {
				best = r.count[l][cj]
			}
		}
	}
	return best
}

func (r *refDynamic) canAdmit(row, c int) bool {
	r.count[row][c]++
	ok := true
	for ci := 0; ci < r.t.D && ok; ci++ {
		if r.serviceCount(ci)+r.maxCont(ci) > r.q {
			ok = false
		}
	}
	r.count[row][c]--
	return ok
}

func refTable(t *testing.T, d, p int) *pgt.Table {
	t.Helper()
	des, err := bibd.New(d, p)
	if err != nil {
		t.Fatalf("bibd.New(%d, %d): %v", d, p, err)
	}
	tab, err := pgt.New(des)
	if err != nil {
		t.Fatalf("pgt.New: %v", err)
	}
	return tab
}

// TestDynamicMatchesNaiveReference drives the incremental controller and
// the naive full-rescan reference through the same random admit/release
// sequence and demands identical admission decisions and identical
// per-phase service counts and contingency maxima at every step.
func TestDynamicMatchesNaiveReference(t *testing.T) {
	cases := []struct{ d, p, q int }{
		{7, 3, 3},
		{7, 3, 5},
		{13, 4, 4},
		{9, 3, 6},
	}
	for _, tc := range cases {
		tab := refTable(t, tc.d, tc.p)
		dy, err := NewDynamic(tab, tc.q)
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		ref := newRefDynamic(tab, tc.q)
		rng := rand.New(rand.NewSource(int64(tc.d*1000 + tc.p*10 + tc.q)))
		var tickets []Ticket
		for step := 0; step < 4000; step++ {
			if len(tickets) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(tickets))
				tk := tickets[k]
				tickets[k] = tickets[len(tickets)-1]
				tickets = tickets[:len(tickets)-1]
				dy.Release(tk)
				ref.count[tk.row][tk.phase]--
			} else {
				now := int64(rng.Intn(100))
				disk := rng.Intn(tc.d)
				row := rng.Intn(tab.R)
				c := dy.phase(now, disk)
				want := ref.canAdmit(row, c)
				got := dy.CanAdmit(now, disk, row)
				if got != want {
					t.Fatalf("d=%d p=%d q=%d step %d: CanAdmit(row=%d, phase=%d) = %v, reference %v",
						tc.d, tc.p, tc.q, step, row, c, got, want)
				}
				tk, ok := dy.Admit(now, disk, row)
				if ok != want {
					t.Fatalf("step %d: Admit disagreed with CanAdmit", step)
				}
				if ok {
					ref.count[row][c]++
					tickets = append(tickets, tk)
				}
			}
			for ci := 0; ci < tc.d; ci++ {
				if dy.serviceCount(ci) != ref.serviceCount(ci) {
					t.Fatalf("d=%d p=%d q=%d step %d: serviceCount(%d) = %d, reference %d",
						tc.d, tc.p, tc.q, step, ci, dy.serviceCount(ci), ref.serviceCount(ci))
				}
				if dy.maxCont(ci) != ref.maxCont(ci) {
					t.Fatalf("d=%d p=%d q=%d step %d: maxCont(%d) = %d, reference %d",
						tc.d, tc.p, tc.q, step, ci, dy.maxCont(ci), ref.maxCont(ci))
				}
			}
		}
	}
}
