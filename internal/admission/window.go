package admission

// RejectWindow is a sliding-window counter of admission rejects over the
// last W rounds. The policy layer (internal/autopilot) keys its scale-out
// decision on a *sustained* reject rate, not a single bad round, so the
// window is the primitive: push one per-round count per round, read the
// rolling sum. The ring is allocated once at construction and Observe is
// allocation-free, keeping the quiescent controller tick off the heap.
type RejectWindow struct {
	counts []int
	sum    int
	pos    int
	seen   int
}

// NewRejectWindow returns a window over w rounds (w < 1 is treated as 1).
func NewRejectWindow(w int) *RejectWindow {
	if w < 1 {
		w = 1
	}
	return &RejectWindow{counts: make([]int, w)}
}

// Observe pushes one round's reject count, rolling the oldest round out
// of the sum once the window is full.
func (w *RejectWindow) Observe(rejects int) {
	w.sum += rejects - w.counts[w.pos]
	w.counts[w.pos] = rejects
	w.pos++
	if w.pos == len(w.counts) {
		w.pos = 0
	}
	if w.seen < len(w.counts) {
		w.seen++
	}
}

// Sum returns the total rejects over the last Window() observed rounds.
func (w *RejectWindow) Sum() int { return w.sum }

// Window returns the window width in rounds.
func (w *RejectWindow) Window() int { return len(w.counts) }

// Observed returns how many rounds have been pushed, capped at the
// window width — the divisor for a rate over a partially filled window.
func (w *RejectWindow) Observed() int { return w.seen }

// Rate returns rejects per round over the observed part of the window
// (0 before the first Observe).
func (w *RejectWindow) Rate() float64 {
	if w.seen == 0 {
		return 0
	}
	return float64(w.sum) / float64(w.seen)
}

// Reset clears the window to its initial empty state.
func (w *RejectWindow) Reset() {
	clear(w.counts)
	w.sum, w.pos, w.seen = 0, 0, 0
}
