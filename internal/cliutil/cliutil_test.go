package cliutil

import (
	"testing"
	"time"

	"ftcms/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want units.Bits
	}{
		{"256MB", 256 * units.MB},
		{"2GB", 2 * units.GB},
		{"64KB", 64 * units.KB},
		{"1.5MB", units.Bits(1.5 * float64(units.MB))},
		{" 512MB ", 512 * units.MB},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	for _, in := range []string{"", "256", "256TB", "xMB", "-2GB", "0MB"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) accepted", in)
		}
	}
}

func TestHistogram(t *testing.T) {
	cases := []struct {
		samples []int64
		want    string
	}{
		{nil, "[]"},
		{[]int64{4}, "[4:1]"},
		{[]int64{12, 4, 12}, "[4:1 12:2]"},
		{[]int64{0, 0, 7}, "[0:2 7:1]"},
	}
	for _, c := range cases {
		if got := Histogram(c.samples); got != c.want {
			t.Errorf("Histogram(%v) = %q, want %q", c.samples, got, c.want)
		}
	}
}

func TestBucketUS(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{0, 1},
		{700 * time.Nanosecond, 1},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 5},
		{10 * time.Microsecond, 10},
		{11 * time.Microsecond, 20},
		{99 * time.Microsecond, 100},
		{130 * time.Microsecond, 200},
		{450 * time.Microsecond, 500},
		{3 * time.Millisecond, 5000},
		{time.Second, 1_000_000},
	}
	for _, c := range cases {
		if got := bucketUS(c.d); got != c.want {
			t.Errorf("bucketUS(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	if got := h.String(); got != "[]" {
		t.Errorf("empty LatencyHist = %q, want []", got)
	}
	h.Observe(40 * time.Microsecond)
	h.Observe(45 * time.Microsecond)
	h.Observe(130 * time.Microsecond)
	if got := h.String(); got != "[50:2 200:1]" {
		t.Errorf("LatencyHist = %q, want [50:2 200:1]", got)
	}
	// Past the window, old samples fall off: fill with one bucket and
	// the early observations must disappear.
	for i := 0; i < latencyWindow; i++ {
		h.Observe(8 * time.Microsecond)
	}
	if got := h.String(); got != "[10:512]" {
		t.Errorf("LatencyHist after wrap = %q, want [10:512]", got)
	}
}
