package cliutil

import (
	"testing"

	"ftcms/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want units.Bits
	}{
		{"256MB", 256 * units.MB},
		{"2GB", 2 * units.GB},
		{"64KB", 64 * units.KB},
		{"1.5MB", units.Bits(1.5 * float64(units.MB))},
		{" 512MB ", 512 * units.MB},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	for _, in := range []string{"", "256", "256TB", "xMB", "-2GB", "0MB"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) accepted", in)
		}
	}
}

func TestHistogram(t *testing.T) {
	cases := []struct {
		samples []int64
		want    string
	}{
		{nil, "[]"},
		{[]int64{4}, "[4:1]"},
		{[]int64{12, 4, 12}, "[4:1 12:2]"},
		{[]int64{0, 0, 7}, "[0:2 7:1]"},
	}
	for _, c := range cases {
		if got := Histogram(c.samples); got != c.want {
			t.Errorf("Histogram(%v) = %q, want %q", c.samples, got, c.want)
		}
	}
}
