package cliutil

import (
	"testing"

	"ftcms/internal/analytic"
	"ftcms/internal/core"
)

func TestParseGeometry(t *testing.T) {
	cases := []struct {
		d, p int
		ok   bool
	}{
		{7, 3, true},
		{32, 4, true},
		{2, 2, true},
		{32, 0, true},  // no -p flag
		{1, 0, false},  // too few disks
		{0, 3, false},  // too few disks
		{7, 1, false},  // degenerate group
		{7, -2, false}, // negative group
		{4, 5, false},  // group wider than array
	}
	for _, c := range cases {
		g, err := ParseGeometry(c.d, c.p)
		if (err == nil) != c.ok {
			t.Errorf("ParseGeometry(%d, %d): err = %v, want ok=%v", c.d, c.p, err, c.ok)
			continue
		}
		if err == nil && (g.D != c.d || g.P != c.p) {
			t.Errorf("ParseGeometry(%d, %d) = %+v", c.d, c.p, g)
		}
	}
}

func TestResolveScheme(t *testing.T) {
	for _, s := range analytic.Schemes() {
		got, err := ResolveScheme(s.Key())
		if err != nil || got != s {
			t.Errorf("ResolveScheme(%q) = %v, %v", s.Key(), got, err)
		}
	}
	if _, err := ResolveScheme("raid-0"); err == nil {
		t.Error("resolved a bogus scheme name")
	}
	if _, err := ResolveScheme("declustered-dynamic"); err == nil {
		t.Error("analytic resolution accepted the core-only scheme")
	}
}

func TestResolveCoreScheme(t *testing.T) {
	for _, name := range CoreSchemeNames() {
		got, err := ResolveCoreScheme(name)
		if err != nil || string(got) != name {
			t.Errorf("ResolveCoreScheme(%q) = %v, %v", name, got, err)
		}
	}
	if got, err := ResolveCoreScheme("declustered-dynamic"); err != nil || got != core.DeclusteredDynamic {
		t.Errorf("ResolveCoreScheme(declustered-dynamic) = %v, %v", got, err)
	}
	if got, err := ResolveCoreScheme("declustered-pq"); err != nil || got != core.DeclusteredPQ {
		t.Errorf("ResolveCoreScheme(declustered-pq) = %v, %v", got, err)
	}
	if _, err := ResolveCoreScheme("raid-0"); err == nil {
		t.Error("resolved a bogus scheme name")
	}
}

func TestSchemeNamesSortedAndComplete(t *testing.T) {
	names := SchemeNames()
	if len(names) != len(analytic.Schemes()) {
		t.Fatalf("%d names for %d schemes", len(names), len(analytic.Schemes()))
	}
	coreNames := CoreSchemeNames()
	if len(coreNames) != len(names)+2 {
		t.Fatalf("core names %v", coreNames)
	}
	for i := 1; i < len(coreNames); i++ {
		if coreNames[i-1] >= coreNames[i] {
			t.Fatalf("core names not sorted: %v", coreNames)
		}
	}
}
