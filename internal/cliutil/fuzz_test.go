package cliutil

import "testing"

// FuzzParseSize: the parser never panics, and accepted inputs always
// yield positive sizes.
func FuzzParseSize(f *testing.F) {
	for _, seed := range []string{"256MB", "2GB", "64KB", "", "MB", "1.5GB", "-3MB", "1e9KB", "NaNMB", "infGB"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		bits, err := ParseSize(s)
		if err == nil && bits <= 0 {
			t.Fatalf("ParseSize(%q) accepted non-positive %d", s, bits)
		}
	})
}
