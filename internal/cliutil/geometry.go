package cliutil

import (
	"fmt"
	"sort"
	"strings"

	"ftcms/internal/analytic"
	"ftcms/internal/core"
)

// Geometry is the validated -d/-p array geometry the front ends share
// (cmopt, cmsim, cmserve, cmcluster), so every command rejects a
// nonsensical array the same way instead of each rolling its own checks.
type Geometry struct {
	// D is the number of disks.
	D int
	// P is the parity group size (0 when the command has no -p flag).
	P int
}

// ParseGeometry validates a -d/-p flag pair. p == 0 means the command
// takes no parity-group flag and only d is checked.
func ParseGeometry(d, p int) (Geometry, error) {
	if d < 2 {
		return Geometry{}, fmt.Errorf("need at least 2 disks, got -d %d", d)
	}
	if p == 0 {
		return Geometry{D: d}, nil
	}
	if p < 2 {
		return Geometry{}, fmt.Errorf("parity groups need at least 2 disks, got -p %d", p)
	}
	if p > d {
		return Geometry{}, fmt.Errorf("parity group size %d exceeds %d disks", p, d)
	}
	return Geometry{D: d, P: p}, nil
}

// ResolveScheme maps a -scheme flag value to its analytic scheme.
func ResolveScheme(name string) (analytic.Scheme, error) {
	for _, s := range analytic.Schemes() {
		if s.Key() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (want one of %s)", name, strings.Join(SchemeNames(), ", "))
}

// SchemeNames returns the analytic scheme keys, sorted.
func SchemeNames() []string {
	out := make([]string, 0, len(analytic.Schemes()))
	for _, s := range analytic.Schemes() {
		out = append(out, s.Key())
	}
	sort.Strings(out)
	return out
}

// ResolveCoreScheme maps a -scheme flag value to the core server's
// scheme set — the analytic schemes plus declustered-dynamic and
// declustered-pq, which only the server implements (the simulator
// selects dynamic reservations with a knob and the analytic models
// have no double-parity column).
func ResolveCoreScheme(name string) (core.Scheme, error) {
	for _, n := range CoreSchemeNames() {
		if n == name {
			return core.Scheme(name), nil
		}
	}
	return "", fmt.Errorf("unknown scheme %q (want one of %s)", name, strings.Join(CoreSchemeNames(), ", "))
}

// CoreSchemeNames returns the core server's scheme names, sorted.
func CoreSchemeNames() []string {
	out := append(SchemeNames(), string(core.DeclusteredDynamic), string(core.DeclusteredPQ))
	sort.Strings(out)
	return out
}
