// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"math"
	"strings"

	"ftcms/internal/units"
)

// ParseSize parses a human-readable data size with a KB/MB/GB suffix
// (decimal units, e.g. "256MB", "2GB", "1.5MB") into bits.
func ParseSize(s string) (units.Bits, error) {
	s = strings.TrimSpace(s)
	var mult units.Bits
	var num string
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, num = units.GB, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, num = units.MB, s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult, num = units.KB, s[:len(s)-2]
	default:
		return 0, fmt.Errorf("size %q needs a KB/MB/GB suffix", s)
	}
	var n float64
	if _, err := fmt.Sscanf(num, "%g", &n); err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	// Sscanf's %g accepts "NaN" and "inf"; neither is a size.
	if math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
		return 0, fmt.Errorf("size %q must be a positive finite number", s)
	}
	bits := units.Bits(n * float64(mult))
	if bits <= 0 {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return bits, nil
}
