// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"ftcms/internal/units"
)

// ParseSize parses a human-readable data size with a KB/MB/GB suffix
// (decimal units, e.g. "256MB", "2GB", "1.5MB") into bits.
func ParseSize(s string) (units.Bits, error) {
	s = strings.TrimSpace(s)
	var mult units.Bits
	var num string
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, num = units.GB, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, num = units.MB, s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult, num = units.KB, s[:len(s)-2]
	default:
		return 0, fmt.Errorf("size %q needs a KB/MB/GB suffix", s)
	}
	var n float64
	if _, err := fmt.Sscanf(num, "%g", &n); err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	// Sscanf's %g accepts "NaN" and "inf"; neither is a size.
	if math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
		return 0, fmt.Errorf("size %q must be a positive finite number", s)
	}
	bits := units.Bits(n * float64(mult))
	if bits <= 0 {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return bits, nil
}

// Histogram renders integer samples (e.g. detection or rebuild latencies
// in rounds) as a compact value:count string: "[4:1 12:2]" means one
// sample of 4 and two of 12. Samples are round-granular and few, so the
// exact multiset beats bucketing. Empty input renders as "[]".
func Histogram(samples []int64) string {
	if len(samples) == 0 {
		return "[]"
	}
	counts := map[int64]int{}
	var keys []int64
	for _, s := range samples {
		if counts[s] == 0 {
			keys = append(keys, s)
		}
		counts[s]++
	}
	slices.Sort(keys)
	var b strings.Builder
	b.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, counts[k])
	}
	b.WriteByte(']')
	return b.String()
}
