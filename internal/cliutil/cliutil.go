// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"time"

	"ftcms/internal/units"
)

// ParseSize parses a human-readable data size with a KB/MB/GB suffix
// (decimal units, e.g. "256MB", "2GB", "1.5MB") into bits.
func ParseSize(s string) (units.Bits, error) {
	s = strings.TrimSpace(s)
	var mult units.Bits
	var num string
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, num = units.GB, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, num = units.MB, s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult, num = units.KB, s[:len(s)-2]
	default:
		return 0, fmt.Errorf("size %q needs a KB/MB/GB suffix", s)
	}
	var n float64
	if _, err := fmt.Sscanf(num, "%g", &n); err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	// Sscanf's %g accepts "NaN" and "inf"; neither is a size.
	if math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
		return 0, fmt.Errorf("size %q must be a positive finite number", s)
	}
	bits := units.Bits(n * float64(mult))
	if bits <= 0 {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return bits, nil
}

// Histogram renders integer samples (e.g. detection or rebuild latencies
// in rounds) as a compact value:count string: "[4:1 12:2]" means one
// sample of 4 and two of 12. Samples are round-granular and few, so the
// exact multiset beats bucketing. Empty input renders as "[]".
func Histogram(samples []int64) string {
	if len(samples) == 0 {
		return "[]"
	}
	counts := map[int64]int{}
	var keys []int64
	for _, s := range samples {
		if counts[s] == 0 {
			keys = append(keys, s)
		}
		counts[s]++
	}
	slices.Sort(keys)
	var b strings.Builder
	b.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, counts[k])
	}
	b.WriteByte(']')
	return b.String()
}

// latencyWindow is how many recent observations a LatencyHist keeps:
// enough to characterize steady-state cost without letting a long-lived
// daemon grow its stats without bound.
const latencyWindow = 512

// LatencyHist tracks recent operation latencies — per-round tick
// durations in the daemons — as a sliding window of bucketed samples.
// Raw durations are too jittery for Histogram's exact multiset, so each
// is rounded up to a 1-2-5 series of microseconds first; the window
// then renders through Histogram as value:count pairs whose values are
// bucket upper bounds in µs. The zero value is ready to use. Not safe
// for concurrent use; callers serialize with the lock that guards the
// operation being timed.
type LatencyHist struct {
	ring [latencyWindow]int64
	n    int
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	h.ring[h.n%latencyWindow] = bucketUS(d)
	h.n++
}

// String renders the live window via Histogram: "[200:480 500:32]"
// reads as 480 recent ticks within 200µs and 32 more within 500µs.
func (h *LatencyHist) String() string {
	live := min(h.n, latencyWindow)
	return Histogram(h.ring[:live])
}

// bucketUS rounds a duration up to the next 1-2-5 series value in
// microseconds, with a floor of 1µs.
func bucketUS(d time.Duration) int64 {
	us := d.Microseconds()
	if us < 1 {
		return 1
	}
	for b := int64(1); b <= math.MaxInt64/10; b *= 10 {
		for _, m := range [...]int64{1, 2, 5} {
			if us <= m*b {
				return m * b
			}
		}
	}
	return us // beyond the series (>2.5e5 seconds); keep it exact
}
