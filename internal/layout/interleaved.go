package layout

import "fmt"

// Interleaved adapts the super-clipped placement (§5.1) to the Layout
// interface by interleaving the r super-clips into one logical address
// space: logical block x lives in super-clip x mod r at index x div r.
//
// A clip stored in super-clip k therefore occupies logical blocks
// k, k+r, k+2r, … — a stride-r sequence — and advances one disk per
// block exactly like the §4 layout, while staying in PGT row k for its
// whole life (the property the dynamic reservation controller needs).
type Interleaved struct {
	// S is the underlying super-clipped placement.
	S *SuperClipped
}

// NewInterleaved builds the layout for d disks and parity group size p.
func NewInterleaved(d, p int) (*Interleaved, error) {
	s, err := NewSuperClipped(d, p)
	if err != nil {
		return nil, err
	}
	return &Interleaved{S: s}, nil
}

// Name implements Layout.
func (l *Interleaved) Name() string { return "declustered-dynamic" }

// Disks implements Layout.
func (l *Interleaved) Disks() int { return l.S.Table.D }

// GroupSize implements Layout.
func (l *Interleaved) GroupSize() int { return l.S.Table.P }

// Rows returns r, the number of super-clips.
func (l *Interleaved) Rows() int { return l.S.Rows() }

// split maps a logical index to (row, index-within-super-clip).
func (l *Interleaved) split(x int64) (row int, i int64) {
	if x < 0 {
		panic("layout: negative logical block")
	}
	r := int64(l.S.Rows())
	return int(x % r), x / r
}

// join is the inverse of split.
func (l *Interleaved) join(row int, i int64) int64 {
	return int64(row) + i*int64(l.S.Rows())
}

// Place implements Layout.
func (l *Interleaved) Place(x int64) BlockAddr {
	row, i := l.split(x)
	return l.S.Place(row, i)
}

// LogicalAt implements Layout.
func (l *Interleaved) LogicalAt(addr BlockAddr) int64 {
	row, i := l.S.LogicalAt(addr)
	if i < 0 {
		return -1
	}
	return l.join(row, i)
}

// KindAt implements Layout.
func (l *Interleaved) KindAt(addr BlockAddr) Kind {
	if l.LogicalAt(addr) < 0 {
		return Parity
	}
	return Data
}

// GroupOf implements Layout. Group members generally belong to different
// super-clips (§5.1), which the interleaved address space represents
// naturally.
func (l *Interleaved) GroupOf(x int64) Group {
	row, i := l.split(x)
	data, addrs, parity := l.S.GroupOf(row, i)
	g := Group{Data: make([]int64, len(data)), DataAddr: addrs, Parity: parity}
	for k, sb := range data {
		g.Data[k] = l.join(sb.Row, sb.Index)
	}
	return g
}

// RowOf returns the super-clip (PGT row) of logical block x.
func (l *Interleaved) RowOf(x int64) int {
	row, _ := l.split(x)
	return row
}

// String aids debugging.
func (l *Interleaved) String() string {
	return fmt.Sprintf("interleaved(d=%d, p=%d, r=%d)", l.Disks(), l.GroupSize(), l.Rows())
}
