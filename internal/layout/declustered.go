package layout

import (
	"fmt"

	"ftcms/internal/bibd"
	"ftcms/internal/pgt"
)

// Declustered is the declustered-parity placement of §4.1 (Figure 2): all
// clips are concatenated into one stream whose data blocks go to
// consecutive disks round-robin; on each disk, blocks cycle through the
// PGT rows, skipping disk blocks that hold parity for their window.
//
// The placement procedure of Figure 2 is sequential ("the minimum n for
// which disk block j + n·r is not a parity block and has not already been
// allocated"), but because visits to a given (disk, row) pair happen in
// increasing order and parity blocks recur with period p within a
// (disk, row) block sequence, it reduces to closed form; the golden tests
// pin it against the paper's 7-disk example table.
type Declustered struct {
	// Table is the parity group table driving the placement.
	Table *pgt.Table
}

// NewDeclustered builds the declustered layout for d disks and parity
// group size p, constructing the underlying design via bibd.New.
func NewDeclustered(d, p int) (*Declustered, error) {
	des, err := bibd.New(d, p)
	if err != nil {
		return nil, fmt.Errorf("layout: declustered(d=%d, p=%d): %w", d, p, err)
	}
	t, err := pgt.New(des)
	if err != nil {
		return nil, err
	}
	return &Declustered{Table: t}, nil
}

// Name implements Layout.
func (l *Declustered) Name() string { return "declustered" }

// Disks implements Layout.
func (l *Declustered) Disks() int { return l.Table.D }

// GroupSize implements Layout.
func (l *Declustered) GroupSize() int { return l.Table.P }

// Rows returns r, the number of PGT rows.
func (l *Declustered) Rows() int { return l.Table.R }

// parityResidue returns ρ such that on (disk, row), windows n ≡ ρ (mod p)
// hold parity: the rotation picks disk for window n iff
// disks[(p−1−n%p) mod p] == disk. The table precomputes it per cell.
func (l *Declustered) parityResidue(disk, row int) int {
	return l.Table.ParityResidue(disk, row)
}

// dataWindow returns the window of the t-th data (non-parity) block in the
// (disk, row) sequence, skipping windows ≡ ρ (mod p).
func dataWindow(t int64, rho, p int) int64 {
	m := t / int64(p-1)
	u := int(t % int64(p-1))
	v := u
	if u >= rho {
		v = u + 1
	}
	return m*int64(p) + int64(v)
}

// dataIndexOf inverts dataWindow: the ordinal of window n among data
// windows of the (disk, row) sequence, or -1 when n is a parity window.
func dataIndexOf(n int64, rho, p int) int64 {
	v := int(n % int64(p))
	if v == rho {
		return -1
	}
	u := v
	if v > rho {
		u = v - 1
	}
	return (n/int64(p))*int64(p-1) + int64(u)
}

// Place implements Layout using the closed form of the Figure 2 procedure:
// logical block i goes to disk i mod d; its visit ordinal m = i div d has
// row j = m mod r and per-row ordinal t = m div r; the block lands in the
// t-th non-parity window of the (disk, row) sequence.
func (l *Declustered) Place(i int64) BlockAddr {
	if i < 0 {
		panic("layout: negative logical block")
	}
	d := int64(l.Table.D)
	r := int64(l.Table.R)
	disk := int(i % d)
	m := i / d
	j := int(m % r)
	t := m / r
	rho := l.parityResidue(disk, j)
	n := dataWindow(t, rho, l.Table.P)
	return BlockAddr{Disk: disk, Block: n*r + int64(j)}
}

// LogicalAt implements Layout.
func (l *Declustered) LogicalAt(addr BlockAddr) int64 {
	checkDiskRange(addr.Disk, l.Table.D)
	r := int64(l.Table.R)
	j := int(addr.Block % r)
	n := addr.Block / r
	rho := l.parityResidue(addr.Disk, j)
	t := dataIndexOf(n, rho, l.Table.P)
	if t < 0 {
		return -1
	}
	m := int64(j) + t*r
	return int64(addr.Disk) + m*int64(l.Table.D)
}

// KindAt implements Layout.
func (l *Declustered) KindAt(addr BlockAddr) Kind {
	if l.LogicalAt(addr) < 0 {
		return Parity
	}
	return Data
}

// RowOf returns the PGT row that logical data block i maps to.
func (l *Declustered) RowOf(i int64) int {
	m := i / int64(l.Table.D)
	return int(m % int64(l.Table.R))
}

// GroupOf implements Layout: the parity group of logical block i consists
// of the window-n occurrence of its set; every non-parity member is a data
// block. The group is assembled straight from the table — set membership,
// row and parity residue are all precomputed lookups — so the whole call
// costs two small slice allocations.
func (l *Declustered) GroupOf(i int64) Group {
	addr := l.Place(i)
	t := l.Table
	r := int64(t.R)
	row := int(addr.Block % r)
	n := addr.Block / r
	s := t.Set(row, addr.Disk)
	pd := t.ParityDisk(s, int(n))
	disks := t.Disks(s)
	out := Group{
		Data:     make([]int64, 0, len(disks)-1),
		DataAddr: make([]BlockAddr, 0, len(disks)-1),
	}
	for _, m := range disks {
		mrow := t.RowOf(s, m)
		a := BlockAddr{Disk: m, Block: n*r + int64(mrow)}
		if m == pd {
			out.Parity = a
			continue
		}
		li := l.LogicalAt(a)
		if li < 0 {
			panic("layout: non-parity group member decoded as parity")
		}
		out.Data = append(out.Data, li)
		out.DataAddr = append(out.DataAddr, a)
	}
	return out
}

// SuperClipped is the §5.1 variant used by the dynamic reservation scheme:
// the same PGT-driven placement, but the store is split into r independent
// super-clips; super-clip k only occupies disk blocks mapped to PGT row k,
// so a clip stays in one row for its whole life.
type SuperClipped struct {
	// Table is the parity group table driving the placement.
	Table *pgt.Table
}

// NewSuperClipped builds the super-clip layout for d disks and group size
// p.
func NewSuperClipped(d, p int) (*SuperClipped, error) {
	des, err := bibd.New(d, p)
	if err != nil {
		return nil, fmt.Errorf("layout: superclipped(d=%d, p=%d): %w", d, p, err)
	}
	t, err := pgt.New(des)
	if err != nil {
		return nil, err
	}
	return &SuperClipped{Table: t}, nil
}

// Name identifies the scheme.
func (l *SuperClipped) Name() string { return "declustered-dynamic" }

// Disks returns d.
func (l *SuperClipped) Disks() int { return l.Table.D }

// GroupSize returns p.
func (l *SuperClipped) GroupSize() int { return l.Table.P }

// Rows returns r, the number of super-clips.
func (l *SuperClipped) Rows() int { return l.Table.R }

// Place returns the address of block i of super-clip row: disk i mod d, in
// the (i div d)-th non-parity window of the (disk, row) sequence.
func (l *SuperClipped) Place(row int, i int64) BlockAddr {
	if row < 0 || row >= l.Table.R {
		panic(fmt.Sprintf("layout: super-clip row %d out of range [0, %d)", row, l.Table.R))
	}
	if i < 0 {
		panic("layout: negative logical block")
	}
	d := int64(l.Table.D)
	disk := int(i % d)
	t := i / d
	rho := l.Table.ParityResidue(disk, row)
	n := dataWindow(t, rho, l.Table.P)
	return BlockAddr{Disk: disk, Block: n*int64(l.Table.R) + int64(row)}
}

// LogicalAt returns (row, index) of the data block at addr, or (-1, -1)
// for parity.
func (l *SuperClipped) LogicalAt(addr BlockAddr) (row int, i int64) {
	checkDiskRange(addr.Disk, l.Table.D)
	r := int64(l.Table.R)
	row = int(addr.Block % r)
	n := addr.Block / r
	rho := l.Table.ParityResidue(addr.Disk, row)
	t := dataIndexOf(n, rho, l.Table.P)
	if t < 0 {
		return -1, -1
	}
	return row, int64(addr.Disk) + t*int64(l.Table.D)
}

// SuperBlock identifies one data block in the super-clipped store: the
// super-clip (PGT row) it belongs to and its index within that super-clip.
type SuperBlock struct {
	Row   int
	Index int64
}

// GroupOf returns the parity group of block i of super-clip row. Note that
// a parity group generally spans *several* super-clips: its set occupies
// different PGT rows in different columns, so each data member carries its
// own (row, index) identity.
func (l *SuperClipped) GroupOf(row int, i int64) (data []SuperBlock, dataAddr []BlockAddr, parity BlockAddr) {
	addr := l.Place(row, i)
	t := l.Table
	r := int64(t.R)
	n := addr.Block / r
	s := t.Set(row, addr.Disk)
	pd := t.ParityDisk(s, int(n))
	disks := t.Disks(s)
	data = make([]SuperBlock, 0, len(disks)-1)
	dataAddr = make([]BlockAddr, 0, len(disks)-1)
	for _, m := range disks {
		a := BlockAddr{Disk: m, Block: n*r + int64(t.RowOf(s, m))}
		if m == pd {
			parity = a
			continue
		}
		mrow, li := l.LogicalAt(a)
		if li < 0 {
			panic("layout: non-parity group member decoded as parity")
		}
		data = append(data, SuperBlock{Row: mrow, Index: li})
		dataAddr = append(dataAddr, a)
	}
	return data, dataAddr, parity
}
