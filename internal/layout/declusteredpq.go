package layout

import (
	"fmt"

	"ftcms/internal/bibd"
	"ftcms/internal/pgt"
)

// DeclusteredPQ is the P+Q double-parity variant of the declustered
// placement: the same BIBD-driven parity group table, but each group
// stores two independent parity columns — the XOR parity P and a
// Reed-Solomon-coded Q — so any two concurrent failures inside a group
// remain recoverable. This is the t-design-style generalization of §4:
// reconstruction load stays spread over the whole array exactly as with
// single parity, only the per-group redundancy doubles.
//
// Placement arithmetic mirrors Declustered: within each (disk, row)
// block sequence the parity rotation has period p, but now two windows
// per period hold parity (ρP and its trailing neighbour ρQ = ρP + p − 1
// mod p), leaving p−2 data windows. All queries stay closed-form O(1).
type DeclusteredPQ struct {
	// Table is the parity group table driving the placement.
	Table *pgt.Table
}

// NewDeclusteredPQ builds the double-parity declustered layout for d
// disks and parity group size p (p ≥ 3: a group is p−2 data blocks plus
// P plus Q).
func NewDeclusteredPQ(d, p int) (*DeclusteredPQ, error) {
	if p < 3 {
		return nil, fmt.Errorf("layout: declustered-pq needs p >= 3 (p-2 data + P + Q), got p=%d", p)
	}
	des, err := bibd.New(d, p)
	if err != nil {
		return nil, fmt.Errorf("layout: declustered-pq(d=%d, p=%d): %w", d, p, err)
	}
	t, err := pgt.New(des)
	if err != nil {
		return nil, err
	}
	return &DeclusteredPQ{Table: t}, nil
}

// Name implements Layout.
func (l *DeclusteredPQ) Name() string { return "declustered-pq" }

// Disks implements Layout.
func (l *DeclusteredPQ) Disks() int { return l.Table.D }

// GroupSize implements Layout.
func (l *DeclusteredPQ) GroupSize() int { return l.Table.P }

// Rows returns r, the number of PGT rows.
func (l *DeclusteredPQ) Rows() int { return l.Table.R }

// dataWindow2 returns the window of the t-th data block in a (disk,
// row) sequence that parks parity in windows ≡ r1 and ≡ r2 (mod p):
// p−2 data windows per period, skipping both parity residues.
func dataWindow2(t int64, r1, r2, p int) int64 {
	a, b := r1, r2
	if a > b {
		a, b = b, a
	}
	m := t / int64(p-2)
	v := int(t % int64(p-2))
	if v >= a {
		v++
	}
	if v >= b {
		v++
	}
	return m*int64(p) + int64(v)
}

// dataIndexOf2 inverts dataWindow2: the ordinal of window n among the
// sequence's data windows, or -1 when n holds P or Q parity.
func dataIndexOf2(n int64, r1, r2, p int) int64 {
	a, b := r1, r2
	if a > b {
		a, b = b, a
	}
	v := int(n % int64(p))
	if v == a || v == b {
		return -1
	}
	u := v
	if v > a {
		u--
	}
	if v > b {
		u--
	}
	return (n/int64(p))*int64(p-2) + int64(u)
}

// Place implements Layout with the same closed form as Declustered,
// skipping two parity residues per period instead of one.
func (l *DeclusteredPQ) Place(i int64) BlockAddr {
	if i < 0 {
		panic("layout: negative logical block")
	}
	d := int64(l.Table.D)
	r := int64(l.Table.R)
	disk := int(i % d)
	m := i / d
	j := int(m % r)
	t := m / r
	rp := l.Table.ParityResidue(disk, j)
	rq := l.Table.ParityResidueQ(disk, j)
	n := dataWindow2(t, rp, rq, l.Table.P)
	return BlockAddr{Disk: disk, Block: n*r + int64(j)}
}

// LogicalAt implements Layout.
func (l *DeclusteredPQ) LogicalAt(addr BlockAddr) int64 {
	checkDiskRange(addr.Disk, l.Table.D)
	r := int64(l.Table.R)
	j := int(addr.Block % r)
	n := addr.Block / r
	rp := l.Table.ParityResidue(addr.Disk, j)
	rq := l.Table.ParityResidueQ(addr.Disk, j)
	t := dataIndexOf2(n, rp, rq, l.Table.P)
	if t < 0 {
		return -1
	}
	m := int64(j) + t*r
	return int64(addr.Disk) + m*int64(l.Table.D)
}

// KindAt implements Layout: both parity columns report Parity.
func (l *DeclusteredPQ) KindAt(addr BlockAddr) Kind {
	if l.LogicalAt(addr) < 0 {
		return Parity
	}
	return Data
}

// RowOf returns the PGT row that logical data block i maps to.
func (l *DeclusteredPQ) RowOf(i int64) int {
	m := i / int64(l.Table.D)
	return int(m % int64(l.Table.R))
}

// GroupOf implements Layout: the group's data members in ascending
// set-disk order (their positions fix the Q coefficients), plus the P
// and Q addresses for this window's rotation.
func (l *DeclusteredPQ) GroupOf(i int64) Group {
	addr := l.Place(i)
	t := l.Table
	r := int64(t.R)
	row := int(addr.Block % r)
	n := addr.Block / r
	s := t.Set(row, addr.Disk)
	pd := t.ParityDisk(s, int(n))
	qd := t.ParityDiskQ(s, int(n))
	disks := t.Disks(s)
	out := Group{
		Data:     make([]int64, 0, len(disks)-2),
		DataAddr: make([]BlockAddr, 0, len(disks)-2),
		HasQ:     true,
	}
	for _, m := range disks {
		mrow := t.RowOf(s, m)
		a := BlockAddr{Disk: m, Block: n*r + int64(mrow)}
		switch m {
		case pd:
			out.Parity = a
		case qd:
			out.Q = a
		default:
			li := l.LogicalAt(a)
			if li < 0 {
				panic("layout: non-parity group member decoded as parity")
			}
			out.Data = append(out.Data, li)
			out.DataAddr = append(out.DataAddr, a)
		}
	}
	return out
}
