package layout

import "fmt"

// FlatUniform is the uniform, flat parity placement of §6.2 (Figure 3),
// used by the pre-fetching scheme without parity disks. The d disks form
// d/(p−1) clusters of p−1 disks each; data blocks stripe round-robin over
// *all* d disks; the p−1 data blocks at one level of one cluster form a
// parity group whose parity block is stored on the
// (g mod (d−(p−1)))-th disk following the cluster's last disk, where g is
// the group's level — so parity load rotates uniformly over the array.
//
// Parity blocks live past the data region: the layout is sized with a
// fixed data capacity so parity block numbers are well defined. On each
// disk, parity blocks are ordered by (cluster, level), which reproduces
// the paper's Figure 3 exactly (golden-tested).
type FlatUniform struct {
	d, p int
	// dataBlocks is the store's data capacity in blocks, rounded up to a
	// full stripe (multiple of d).
	dataBlocks int64
}

// NewFlatUniform builds the layout. p−1 must divide d, p >= 2, and
// dataBlocks > 0 fixes the data region size (rounded up to a stripe).
func NewFlatUniform(d, p int, dataBlocks int64) (*FlatUniform, error) {
	if p < 2 {
		return nil, fmt.Errorf("layout: flat-uniform: parity group size %d < 2", p)
	}
	if d < p || d%(p-1) != 0 {
		return nil, fmt.Errorf("layout: flat-uniform: cluster size p−1=%d must divide d=%d", p-1, d)
	}
	if d-(p-1) < 1 {
		return nil, fmt.Errorf("layout: flat-uniform: need d > p−1")
	}
	if dataBlocks <= 0 {
		return nil, fmt.Errorf("layout: flat-uniform: dataBlocks must be positive")
	}
	if rem := dataBlocks % int64(d); rem != 0 {
		dataBlocks += int64(d) - rem
	}
	return &FlatUniform{d: d, p: p, dataBlocks: dataBlocks}, nil
}

// Name implements Layout.
func (l *FlatUniform) Name() string { return "prefetch-flat" }

// Disks implements Layout.
func (l *FlatUniform) Disks() int { return l.d }

// GroupSize implements Layout.
func (l *FlatUniform) GroupSize() int { return l.p }

// Clusters returns d/(p−1).
func (l *FlatUniform) Clusters() int { return l.d / (l.p - 1) }

// DataBlocks returns the (stripe-rounded) data capacity in blocks.
func (l *FlatUniform) DataBlocks() int64 { return l.dataBlocks }

// levels returns the height of the data region on each disk.
func (l *FlatUniform) levels() int64 { return l.dataBlocks / int64(l.d) }

// Place implements Layout.
func (l *FlatUniform) Place(i int64) BlockAddr {
	if i < 0 {
		panic("layout: negative logical block")
	}
	if i >= l.dataBlocks {
		panic(fmt.Sprintf("layout: flat-uniform: block %d beyond data capacity %d", i, l.dataBlocks))
	}
	return BlockAddr{Disk: int(i % int64(l.d)), Block: i / int64(l.d)}
}

// parityTargetDisk returns the disk storing parity for the level-g group
// of cluster c: the (g mod (d−(p−1)))-th disk after the cluster's last.
func (l *FlatUniform) parityTargetDisk(c int, g int64) int {
	last := c*(l.p-1) + (l.p - 2)
	return (last + 1 + int(g%int64(l.d-(l.p-1)))) % l.d
}

// parityBlockNumber returns the disk block number holding parity for
// (cluster c, level g) on its target disk: parity blocks follow the data
// region in (cluster, level) order.
func (l *FlatUniform) parityBlockNumber(c int, g int64) int64 {
	target := l.parityTargetDisk(c, g)
	seq := int64(0)
	// Count parity blocks (c', g') lexicographically before (c, g) that
	// also land on target. For cluster c', levels hitting target are
	// g' ≡ g0(c') (mod M) with M = d−(p−1); count those with
	// g' < levels (c' < c) or g' < g (c' == c).
	M := int64(l.d - (l.p - 1))
	for cp := 0; cp <= c; cp++ {
		base := l.parityTargetDisk(cp, 0)
		// Levels g' with (base + g' mod M) mod d == target:
		// g' mod M == (target - base) mod d, representable iff < M.
		off := ((target-base)%l.d + l.d) % l.d
		if off >= int(M) {
			continue
		}
		limit := l.levels() // exclusive bound on g'
		if cp == c {
			limit = g
		}
		if limit <= int64(off) {
			continue
		}
		seq += (limit - int64(off) + M - 1) / M
	}
	return l.levels() + seq
}

// LogicalAt implements Layout.
func (l *FlatUniform) LogicalAt(addr BlockAddr) int64 {
	checkDiskRange(addr.Disk, l.d)
	if addr.Block >= l.levels() {
		return -1 // parity region (or unused)
	}
	return addr.Block*int64(l.d) + int64(addr.Disk)
}

// KindAt implements Layout.
func (l *FlatUniform) KindAt(addr BlockAddr) Kind {
	if l.LogicalAt(addr) < 0 {
		return Parity
	}
	return Data
}

// GroupOf implements Layout: logical block i sits in cluster
// c = (i mod d)/(p−1) at level g = i div d; its group is the p−1 blocks of
// that cluster's level.
func (l *FlatUniform) GroupOf(i int64) Group {
	addr := l.Place(i)
	c := addr.Disk / (l.p - 1)
	g0 := addr.Block*int64(l.d) + int64(c)*int64(l.p-1)
	var g Group
	for k := 0; k < l.p-1; k++ {
		g.Data = append(g.Data, g0+int64(k))
		g.DataAddr = append(g.DataAddr, BlockAddr{Disk: c*(l.p-1) + k, Block: addr.Block})
	}
	g.Parity = BlockAddr{
		Disk:  l.parityTargetDisk(c, addr.Block),
		Block: l.parityBlockNumber(c, addr.Block),
	}
	return g
}

// ParityTargetClass returns the residue g mod (d−(p−1)) that determines
// which disk holds parity for a block at level g — the §6.2 admission
// control constraint groups clips by this class.
func (l *FlatUniform) ParityTargetClass(level int64) int {
	return int(level % int64(l.d-(l.p-1)))
}
