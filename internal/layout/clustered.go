package layout

import "fmt"

// Clustered is the placement with dedicated parity disks shared by three
// schemes of the paper: the pre-fetching scheme of §6.1, streaming RAID
// [TPBG93] (§7.3) and the non-clustered scheme [BGM95] (§7.4). The d
// disks form d/p clusters of p disks; the last disk of each cluster is its
// parity disk, the first p−1 hold data. Data blocks stripe round-robin
// over the data disks of all clusters; the p−1 data blocks at one
// disk-block level of one cluster plus the parity block at the same level
// of the cluster's parity disk form a parity group.
//
// The three schemes share this geometry and differ only in retrieval
// granularity, buffering and degraded-mode behaviour, which live in the
// admission/recovery layers; Name distinguishes them for reporting.
type Clustered struct {
	name string
	d, p int
}

// NewClustered builds the shared geometry. p must divide d and p >= 2.
func NewClustered(name string, d, p int) (*Clustered, error) {
	if p < 2 {
		return nil, fmt.Errorf("layout: %s: parity group size %d < 2", name, p)
	}
	if d < p || d%p != 0 {
		return nil, fmt.Errorf("layout: %s: cluster size p=%d must divide d=%d", name, p, d)
	}
	return &Clustered{name: name, d: d, p: p}, nil
}

// NewPrefetchParityDisk builds the §6.1 layout.
func NewPrefetchParityDisk(d, p int) (*Clustered, error) {
	return NewClustered("prefetch-parity-disk", d, p)
}

// NewStreamingRAID builds the streaming RAID layout [TPBG93].
func NewStreamingRAID(d, p int) (*Clustered, error) {
	return NewClustered("streaming-raid", d, p)
}

// NewNonClustered builds the non-clustered layout [BGM95]. (The name is
// the paper's: clusters exist, but degraded-mode whole-group reads happen
// only in the failed cluster rather than array-wide.)
func NewNonClustered(d, p int) (*Clustered, error) {
	return NewClustered("non-clustered", d, p)
}

// Name implements Layout.
func (l *Clustered) Name() string { return l.name }

// Disks implements Layout.
func (l *Clustered) Disks() int { return l.d }

// GroupSize implements Layout.
func (l *Clustered) GroupSize() int { return l.p }

// Clusters returns the number of clusters, d/p.
func (l *Clustered) Clusters() int { return l.d / l.p }

// DataDisks returns the number of data disks, d·(p−1)/p.
func (l *Clustered) DataDisks() int { return l.Clusters() * (l.p - 1) }

// ParityDiskOf returns the parity disk of cluster c (its last disk).
func (l *Clustered) ParityDiskOf(c int) int { return c*l.p + l.p - 1 }

// IsParityDisk reports whether disk is a dedicated parity disk.
func (l *Clustered) IsParityDisk(disk int) bool {
	checkDiskRange(disk, l.d)
	return disk%l.p == l.p-1
}

// dataDiskAt maps a data-disk ordinal (0..DataDisks()-1) to a physical
// disk, skipping parity disks.
func (l *Clustered) dataDiskAt(ord int) int {
	c := ord / (l.p - 1)
	w := ord % (l.p - 1)
	return c*l.p + w
}

// Place implements Layout: logical block i goes to the (i mod
// DataDisks())-th data disk at level i div DataDisks().
func (l *Clustered) Place(i int64) BlockAddr {
	if i < 0 {
		panic("layout: negative logical block")
	}
	dd := int64(l.DataDisks())
	return BlockAddr{Disk: l.dataDiskAt(int(i % dd)), Block: i / dd}
}

// LogicalAt implements Layout.
func (l *Clustered) LogicalAt(addr BlockAddr) int64 {
	checkDiskRange(addr.Disk, l.d)
	if l.IsParityDisk(addr.Disk) {
		return -1
	}
	c := addr.Disk / l.p
	w := addr.Disk % l.p
	ord := c*(l.p-1) + w
	return addr.Block*int64(l.DataDisks()) + int64(ord)
}

// KindAt implements Layout.
func (l *Clustered) KindAt(addr BlockAddr) Kind {
	if l.IsParityDisk(addr.Disk) {
		return Parity
	}
	return Data
}

// GroupOf implements Layout: the group of block i is the p−1 consecutive
// logical blocks occupying its cluster at its level, with parity on the
// cluster's parity disk at the same level.
func (l *Clustered) GroupOf(i int64) Group {
	addr := l.Place(i)
	c := addr.Disk / l.p
	dd := int64(l.DataDisks())
	first := addr.Block*dd + int64(c)*int64(l.p-1)
	var g Group
	for k := 0; k < l.p-1; k++ {
		li := first + int64(k)
		g.Data = append(g.Data, li)
		g.DataAddr = append(g.DataAddr, BlockAddr{Disk: c*l.p + k, Block: addr.Block})
	}
	g.Parity = BlockAddr{Disk: l.ParityDiskOf(c), Block: addr.Block}
	return g
}

// ClusterOfBlock returns the cluster that stores logical block i.
func (l *Clustered) ClusterOfBlock(i int64) int {
	return l.Place(i).Disk / l.p
}
