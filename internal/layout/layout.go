// Package layout implements the data/parity placements of Özden et al.
// (SIGMOD 1996): the declustered-parity placement of §4.1 (Figure 2), its
// super-clip variant for the dynamic reservation scheme (§5.1), the
// clustered placement with dedicated parity disks shared by the
// pre-fetching scheme of §6.1, streaming RAID [TPBG93] and the
// non-clustered scheme [BGM95], and the flat-uniform placement of §6.2
// (Figure 3).
//
// A layout answers three questions about a store of logical data blocks
// striped over d disks:
//
//   - where does logical data block i live (disk, disk-block)?
//   - which blocks form its parity group, and where is the parity block?
//   - which disk block holds what (data i / parity / unused)?
//
// Placements are arithmetic (O(1) per query, no allocation tables), which
// the package's golden tests pin against the paper's worked examples.
package layout

import "fmt"

// BlockAddr addresses one block on one disk.
type BlockAddr struct {
	// Disk is the disk index in [0, d).
	Disk int
	// Block is the block index on that disk.
	Block int64
}

func (a BlockAddr) String() string { return fmt.Sprintf("(disk %d, block %d)", a.Disk, a.Block) }

// Kind identifies the content of a disk block.
type Kind int

// Disk block kinds.
const (
	// Data blocks hold clip content.
	Data Kind = iota
	// Parity blocks hold XOR parity for their group.
	Parity
)

// Group describes one parity group: the logical indices of its data
// blocks, their addresses, and the parity block's address. Data blocks
// past the end of the stored stream simply contain zeroes; parity is
// always well defined.
type Group struct {
	// Data lists the logical data block indices of the group, ascending.
	Data []int64
	// DataAddr lists the corresponding disk addresses, parallel to Data.
	DataAddr []BlockAddr
	// Parity is the address of the group's parity block (the XOR column
	// P for double-parity layouts).
	Parity BlockAddr
	// Q is the address of the group's second, Reed-Solomon-coded parity
	// block. Only meaningful when HasQ is set; single-parity layouts
	// leave it zero.
	Q BlockAddr
	// HasQ reports whether the group carries a Q column — i.e. whether
	// the layout is a P+Q double-parity placement. The data block at
	// Data[k] takes Q coefficient g^k.
	HasQ bool
}

// Layout is the common interface over all placements.
type Layout interface {
	// Name identifies the scheme, e.g. "declustered".
	Name() string
	// Disks returns d, the number of disks in the array.
	Disks() int
	// GroupSize returns p, the parity group size (data blocks + parity).
	GroupSize() int
	// Place returns the address of logical data block i (i >= 0).
	Place(i int64) BlockAddr
	// LogicalAt returns the logical data block stored at addr, or -1 when
	// the address holds parity.
	LogicalAt(addr BlockAddr) int64
	// KindAt reports whether addr holds data or parity.
	KindAt(addr BlockAddr) Kind
	// GroupOf returns the parity group containing logical data block i.
	GroupOf(i int64) Group
}

// checkDiskRange panics on an out-of-range disk; placements are internal
// math, so a bad disk index is always a programming error.
func checkDiskRange(disk, d int) {
	if disk < 0 || disk >= d {
		panic(fmt.Sprintf("layout: disk %d out of range [0, %d)", disk, d))
	}
}
