package layout

import "testing"

func TestClusteredBasics(t *testing.T) {
	l, err := NewPrefetchParityDisk(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Disks() != 32 || l.GroupSize() != 4 || l.Clusters() != 8 || l.DataDisks() != 24 {
		t.Fatalf("geometry wrong: d=%d p=%d clusters=%d data=%d", l.Disks(), l.GroupSize(), l.Clusters(), l.DataDisks())
	}
	if l.Name() != "prefetch-parity-disk" {
		t.Errorf("Name = %q", l.Name())
	}
	// Parity disks are 3, 7, 11, ..., 31.
	for c := 0; c < 8; c++ {
		pd := l.ParityDiskOf(c)
		if pd != c*4+3 {
			t.Errorf("ParityDiskOf(%d) = %d", c, pd)
		}
		if !l.IsParityDisk(pd) {
			t.Errorf("IsParityDisk(%d) = false", pd)
		}
		if l.IsParityDisk(pd - 1) {
			t.Errorf("IsParityDisk(%d) = true", pd-1)
		}
	}
}

func TestClusteredConstructors(t *testing.T) {
	if l, _ := NewStreamingRAID(8, 4); l.Name() != "streaming-raid" {
		t.Error("streaming RAID constructor name wrong")
	}
	if l, _ := NewNonClustered(8, 4); l.Name() != "non-clustered" {
		t.Error("non-clustered constructor name wrong")
	}
	if _, err := NewClustered("x", 10, 4); err == nil {
		t.Error("p must divide d")
	}
	if _, err := NewClustered("x", 4, 1); err == nil {
		t.Error("p must be >= 2")
	}
	if _, err := NewClustered("x", 2, 4); err == nil {
		t.Error("d must be >= p")
	}
}

func TestClusteredRoundTrip(t *testing.T) {
	l, err := NewPrefetchParityDisk(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[BlockAddr]bool{}
	for i := int64(0); i < 600; i++ {
		addr := l.Place(i)
		if seen[addr] {
			t.Fatalf("address %v reused", addr)
		}
		seen[addr] = true
		if l.IsParityDisk(addr.Disk) {
			t.Fatalf("data block %d placed on parity disk %d", i, addr.Disk)
		}
		if back := l.LogicalAt(addr); back != i {
			t.Fatalf("LogicalAt(Place(%d)) = %d", i, back)
		}
		if l.KindAt(addr) != Data {
			t.Fatalf("KindAt(Place(%d)) = parity", i)
		}
	}
	// Parity disk addresses decode as parity.
	if l.LogicalAt(BlockAddr{Disk: 3, Block: 5}) != -1 {
		t.Error("parity disk block decoded as data")
	}
	if l.KindAt(BlockAddr{Disk: 7, Block: 0}) != Parity {
		t.Error("parity disk block kind != Parity")
	}
}

// TestClusteredPlacementShape: with d=8, p=4, data disks are 0,1,2 and
// 4,5,6; the stream visits them in order.
func TestClusteredPlacementShape(t *testing.T) {
	l, err := NewPrefetchParityDisk(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantDisks := []int{0, 1, 2, 4, 5, 6, 0, 1, 2, 4, 5, 6}
	for i, want := range wantDisks {
		addr := l.Place(int64(i))
		if addr.Disk != want {
			t.Errorf("block %d on disk %d, want %d", i, addr.Disk, want)
		}
		if addr.Block != int64(i/6) {
			t.Errorf("block %d at level %d, want %d", i, addr.Block, i/6)
		}
	}
}

func TestClusteredGroups(t *testing.T) {
	l, err := NewPrefetchParityDisk(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Group of block 0: blocks 0,1,2 on disks 0,1,2 level 0, parity disk 3.
	g := l.GroupOf(0)
	if len(g.Data) != 3 || g.Data[0] != 0 || g.Data[1] != 1 || g.Data[2] != 2 {
		t.Fatalf("group of 0: %v", g.Data)
	}
	if g.Parity != (BlockAddr{Disk: 3, Block: 0}) {
		t.Fatalf("parity of group 0 at %v", g.Parity)
	}
	// Group of block 4: blocks 3,4,5 in cluster 1, parity disk 7.
	g = l.GroupOf(4)
	if g.Data[0] != 3 || g.Data[2] != 5 || g.Parity.Disk != 7 {
		t.Fatalf("group of 4: %v parity %v", g.Data, g.Parity)
	}
	// Consistency across members and levels.
	for i := int64(0); i < 300; i++ {
		g := l.GroupOf(i)
		if len(g.Data) != 3 {
			t.Fatalf("group of %d has %d members", i, len(g.Data))
		}
		for _, li := range g.Data {
			g2 := l.GroupOf(li)
			if g2.Parity != g.Parity {
				t.Fatalf("members %d and %d disagree on parity", i, li)
			}
		}
		if c := l.ClusterOfBlock(i); g.Parity.Disk != l.ParityDiskOf(c) {
			t.Fatalf("parity of block %d not on its cluster's parity disk", i)
		}
	}
}

func TestClusteredPanics(t *testing.T) {
	l, err := NewPrefetchParityDisk(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, func() { l.Place(-1) })
	mustPanic(t, func() { l.LogicalAt(BlockAddr{Disk: 9}) })
}

// TestClusteredMinimalP2: p=2 means 1 data disk + 1 parity disk per
// cluster (mirroring).
func TestClusteredMinimalP2(t *testing.T) {
	l, err := NewPrefetchParityDisk(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.DataDisks() != 2 {
		t.Fatalf("DataDisks = %d, want 2", l.DataDisks())
	}
	g := l.GroupOf(0)
	if len(g.Data) != 1 || g.Parity.Disk != 1 {
		t.Fatalf("p=2 group: %v parity %v", g.Data, g.Parity)
	}
}
