package layout

import (
	"testing"
)

// paperPlacement is the Figure 2 result table from the paper for d=7, p=3:
// rows are disk blocks 0..8, columns disks 0..6. Dnn is logical data block
// nn; -1 marks a parity block.
var paperPlacement = [9][7]int64{
	{0, 1, 2, -1, -1, -1, -1},
	{7, 8, 9, 10, 11, -1, -1},
	{14, 15, 16, 17, 18, 19, -1},
	{21, -1, -1, 3, 4, 5, 6},
	{28, 29, 30, -1, -1, 12, 13},
	{35, 36, -1, 38, -1, -1, 20},
	{-1, 22, 23, 24, 25, 26, 27},
	{-1, -1, -1, 31, 32, 33, 34},
	{-1, -1, 37, -1, 39, 40, 41},
}

func fanoLayout(t *testing.T) *Declustered {
	t.Helper()
	l, err := NewDeclustered(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFigure2GoldenPlacement pins Place and LogicalAt against the paper's
// worked example (E2).
func TestFigure2GoldenPlacement(t *testing.T) {
	l := fanoLayout(t)
	for blk := 0; blk < 9; blk++ {
		for disk := 0; disk < 7; disk++ {
			want := paperPlacement[blk][disk]
			addr := BlockAddr{Disk: disk, Block: int64(blk)}
			got := l.LogicalAt(addr)
			if got != want {
				t.Errorf("LogicalAt(%v) = %d, want %d", addr, got, want)
			}
			if want >= 0 {
				if p := l.Place(want); p != addr {
					t.Errorf("Place(D%d) = %v, want %v", want, p, addr)
				}
				if l.KindAt(addr) != Data {
					t.Errorf("KindAt(%v) = parity, want data", addr)
				}
			} else if l.KindAt(addr) != Parity {
				t.Errorf("KindAt(%v) = data, want parity", addr)
			}
		}
	}
}

// TestFigure2GroupP0P1 pins the paper's claims: "P0 is the parity block
// for data blocks D0 and D1, while P1 is the parity block for data blocks
// D8 and D2."
func TestFigure2GroupP0P1(t *testing.T) {
	l := fanoLayout(t)
	g0 := l.GroupOf(0)
	if len(g0.Data) != 2 || g0.Data[0] != 0 || g0.Data[1] != 1 {
		t.Errorf("group of D0 = %v, want [0 1]", g0.Data)
	}
	if g0.Parity != (BlockAddr{Disk: 3, Block: 0}) {
		t.Errorf("P0 at %v, want disk 3 block 0", g0.Parity)
	}
	g1 := l.GroupOf(2)
	wantData := map[int64]bool{2: true, 8: true}
	if len(g1.Data) != 2 || !wantData[g1.Data[0]] || !wantData[g1.Data[1]] {
		t.Errorf("group of D2 = %v, want {2, 8}", g1.Data)
	}
	if g1.Parity != (BlockAddr{Disk: 4, Block: 0}) {
		t.Errorf("P1 at %v, want disk 4 block 0", g1.Parity)
	}
}

// TestDeclusteredRoundTrip: Place and LogicalAt are inverses over a long
// prefix, and no two logical blocks collide.
func TestDeclusteredRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ d, p int }{{7, 3}, {13, 4}, {9, 3}, {32, 4}, {32, 8}, {32, 16}, {32, 2}, {32, 32}} {
		l, err := NewDeclustered(cfg.d, cfg.p)
		if err != nil {
			t.Fatalf("NewDeclustered(%d,%d): %v", cfg.d, cfg.p, err)
		}
		seen := map[BlockAddr]int64{}
		for i := int64(0); i < 2000; i++ {
			addr := l.Place(i)
			if prev, dup := seen[addr]; dup {
				t.Fatalf("(%d,%d): blocks %d and %d both placed at %v", cfg.d, cfg.p, prev, i, addr)
			}
			seen[addr] = i
			if back := l.LogicalAt(addr); back != i {
				t.Fatalf("(%d,%d): LogicalAt(Place(%d)) = %d", cfg.d, cfg.p, i, back)
			}
			if l.KindAt(addr) != Data {
				t.Fatalf("(%d,%d): Place(%d) marked parity", cfg.d, cfg.p, i)
			}
		}
	}
}

// TestDeclusteredGroupInvariants: every group has p−1 data blocks on p−1
// distinct disks plus parity on a p-th distinct disk, and group membership
// is consistent from every member.
func TestDeclusteredGroupInvariants(t *testing.T) {
	for _, cfg := range []struct{ d, p int }{{7, 3}, {13, 4}, {32, 8}} {
		l, err := NewDeclustered(cfg.d, cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 500; i++ {
			g := l.GroupOf(i)
			if len(g.Data) != cfg.p-1 {
				t.Fatalf("(%d,%d): group of %d has %d data blocks, want %d", cfg.d, cfg.p, i, len(g.Data), cfg.p-1)
			}
			disks := map[int]bool{g.Parity.Disk: true}
			foundSelf := false
			for k, li := range g.Data {
				if li == i {
					foundSelf = true
				}
				a := g.DataAddr[k]
				if disks[a.Disk] {
					t.Fatalf("(%d,%d): group of %d repeats disk %d", cfg.d, cfg.p, i, a.Disk)
				}
				disks[a.Disk] = true
				if l.LogicalAt(a) != li {
					t.Fatalf("(%d,%d): group member addr/index mismatch", cfg.d, cfg.p)
				}
				// Consistency: the group seen from the member matches.
				g2 := l.GroupOf(li)
				if g2.Parity != g.Parity {
					t.Fatalf("(%d,%d): group of %d and %d disagree on parity", cfg.d, cfg.p, i, li)
				}
			}
			if !foundSelf {
				t.Fatalf("(%d,%d): group of %d does not contain it", cfg.d, cfg.p, i)
			}
			if l.KindAt(g.Parity) != Parity {
				t.Fatalf("(%d,%d): parity addr of %d holds data", cfg.d, cfg.p, i)
			}
		}
	}
}

// TestDeclusteredRowOf: the row of block i is (i div d) mod r, and
// consecutive blocks that stay within a stripe share a row (§4.2 property
// 2 precondition).
func TestDeclusteredRowOf(t *testing.T) {
	l := fanoLayout(t)
	for i := int64(0); i < 100; i++ {
		want := int((i / 7) % 3)
		if got := l.RowOf(i); got != want {
			t.Fatalf("RowOf(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestDeclusteredParityShare: over any window span, each disk carries an
// equal share of parity blocks in the long run (parity rotation balance).
func TestDeclusteredParityShare(t *testing.T) {
	l := fanoLayout(t)
	// Over r·p = 9 disk blocks per disk, each disk holds exactly r parity
	// blocks (one per row, rotation period p).
	for disk := 0; disk < 7; disk++ {
		count := 0
		for blk := int64(0); blk < 9; blk++ {
			if l.KindAt(BlockAddr{Disk: disk, Block: blk}) == Parity {
				count++
			}
		}
		if count != 3 {
			t.Errorf("disk %d holds %d parity blocks in 9, want 3", disk, count)
		}
	}
}

func TestDeclusteredErrors(t *testing.T) {
	if _, err := NewDeclustered(10, 3); err == nil {
		t.Error("NewDeclustered(10,3) should fail: no design")
	}
	l := fanoLayout(t)
	mustPanic(t, func() { l.Place(-1) })
	mustPanic(t, func() { l.LogicalAt(BlockAddr{Disk: 7, Block: 0}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// --- SuperClipped ---

func TestSuperClippedRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ d, p int }{{7, 3}, {32, 8}, {32, 16}} {
		l, err := NewSuperClipped(cfg.d, cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[BlockAddr]bool{}
		for row := 0; row < l.Rows(); row++ {
			for i := int64(0); i < 300; i++ {
				addr := l.Place(row, i)
				if seen[addr] {
					t.Fatalf("(%d,%d): address %v reused across super-clips", cfg.d, cfg.p, addr)
				}
				seen[addr] = true
				grow, gi := l.LogicalAt(addr)
				if grow != row || gi != i {
					t.Fatalf("(%d,%d): LogicalAt(Place(row %d, %d)) = (%d, %d)", cfg.d, cfg.p, row, i, grow, gi)
				}
				// Blocks of super-clip k live only in row-k disk blocks.
				if int(addr.Block)%l.Rows() != row {
					t.Fatalf("(%d,%d): super-clip %d block landed in row %d", cfg.d, cfg.p, row, int(addr.Block)%l.Rows())
				}
			}
		}
	}
}

// TestSuperClippedGroups: groups have p−1 data members on distinct disks
// and include the queried block; members may come from other super-clips.
func TestSuperClippedGroups(t *testing.T) {
	l, err := NewSuperClipped(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 3; row++ {
		for i := int64(0); i < 50; i++ {
			data, addrs, parity := l.GroupOf(row, i)
			if len(data) != 2 || len(addrs) != 2 {
				t.Fatalf("group (%d,%d): %d members, want 2", row, i, len(data))
			}
			self := false
			disks := map[int]bool{parity.Disk: true}
			for k, sb := range data {
				if sb.Row == row && sb.Index == i {
					self = true
				}
				if disks[addrs[k].Disk] {
					t.Fatalf("group (%d,%d) repeats disk", row, i)
				}
				disks[addrs[k].Disk] = true
			}
			if !self {
				t.Fatalf("group (%d,%d) missing self", row, i)
			}
		}
	}
}

func TestSuperClippedPanics(t *testing.T) {
	l, err := NewSuperClipped(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, func() { l.Place(3, 0) })
	mustPanic(t, func() { l.Place(0, -1) })
}

// TestSuperClippedConsecutiveDisks: successive blocks of a super-clip land
// on consecutive disks (round-robin), which the §5 rotation argument needs.
func TestSuperClippedConsecutiveDisks(t *testing.T) {
	l, err := NewSuperClipped(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		a := l.Place(1, i)
		b := l.Place(1, i+1)
		if b.Disk != (a.Disk+1)%32 {
			t.Fatalf("block %d on disk %d, block %d on disk %d: not consecutive", i, a.Disk, i+1, b.Disk)
		}
	}
}
