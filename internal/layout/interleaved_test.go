package layout

import (
	"testing"
	"testing/quick"
)

func TestInterleavedBasics(t *testing.T) {
	l, err := NewInterleaved(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Disks() != 7 || l.GroupSize() != 3 || l.Rows() != 3 {
		t.Fatalf("geometry d=%d p=%d r=%d", l.Disks(), l.GroupSize(), l.Rows())
	}
	if l.Name() != "declustered-dynamic" {
		t.Errorf("Name = %q", l.Name())
	}
	if l.String() == "" {
		t.Error("empty String()")
	}
	if _, err := NewInterleaved(10, 3); err == nil {
		t.Error("accepted geometry with no design")
	}
}

// TestInterleavedRowStructure: logical block x belongs to super-clip
// x mod r, and consecutive blocks of one super-clip land on consecutive
// disks.
func TestInterleavedRowStructure(t *testing.T) {
	l, err := NewInterleaved(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < 300; x++ {
		if got := l.RowOf(x); got != int(x%3) {
			t.Fatalf("RowOf(%d) = %d", x, got)
		}
	}
	for row := 0; row < 3; row++ {
		prev := l.Place(int64(row))
		for i := int64(1); i < 60; i++ {
			cur := l.Place(int64(row) + i*3)
			if cur.Disk != (prev.Disk+1)%7 {
				t.Fatalf("row %d: blocks %d,%d on disks %d,%d", row, i-1, i, prev.Disk, cur.Disk)
			}
			prev = cur
		}
	}
}

// TestInterleavedRoundTrip: Place/LogicalAt are inverses; addresses never
// collide across super-clips.
func TestInterleavedRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ d, p int }{{7, 3}, {32, 8}, {32, 16}, {13, 4}} {
		l, err := NewInterleaved(cfg.d, cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[BlockAddr]int64{}
		for x := int64(0); x < 1500; x++ {
			addr := l.Place(x)
			if prev, dup := seen[addr]; dup {
				t.Fatalf("(%d,%d): %d and %d collide at %v", cfg.d, cfg.p, prev, x, addr)
			}
			seen[addr] = x
			if back := l.LogicalAt(addr); back != x {
				t.Fatalf("(%d,%d): LogicalAt(Place(%d)) = %d", cfg.d, cfg.p, x, back)
			}
			if l.KindAt(addr) != Data {
				t.Fatalf("(%d,%d): Place(%d) marked parity", cfg.d, cfg.p, x)
			}
		}
	}
}

// TestInterleavedGroups: groups contain the queried block, occupy p
// distinct disks, and agree from every member.
func TestInterleavedGroups(t *testing.T) {
	l, err := NewInterleaved(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < 400; x++ {
		g := l.GroupOf(x)
		if len(g.Data) != 2 {
			t.Fatalf("group of %d has %d members", x, len(g.Data))
		}
		self := false
		disks := map[int]bool{g.Parity.Disk: true}
		for k, li := range g.Data {
			if li == x {
				self = true
			}
			if disks[g.DataAddr[k].Disk] {
				t.Fatalf("group of %d repeats a disk", x)
			}
			disks[g.DataAddr[k].Disk] = true
			g2 := l.GroupOf(li)
			if g2.Parity != g.Parity {
				t.Fatalf("groups of %d and %d disagree", x, li)
			}
		}
		if !self {
			t.Fatalf("group of %d missing self", x)
		}
		if l.KindAt(g.Parity) != Parity {
			t.Fatalf("parity of %d decodes as data", x)
		}
	}
}

func TestInterleavedPanics(t *testing.T) {
	l, err := NewInterleaved(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, func() { l.Place(-1) })
	mustPanic(t, func() { l.LogicalAt(BlockAddr{Disk: 7}) })
}

// TestLayoutsRoundTripProperty: quick-checked Place/LogicalAt inversion
// across all arithmetic layouts.
func TestLayoutsRoundTripProperty(t *testing.T) {
	decl, err := NewDeclustered(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := NewInterleaved(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := NewPrefetchParityDisk(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewFlatUniform(12, 4, 12000)
	if err != nil {
		t.Fatal(err)
	}
	lays := []Layout{decl, inter, clus, flat}
	f := func(raw uint32) bool {
		x := int64(raw % 10000)
		for _, l := range lays {
			if l.LogicalAt(l.Place(x)) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLayoutsGroupDisjointProperty: for each layout, two blocks in the
// same group never share a disk, and the parity disk differs from all
// data disks.
func TestLayoutsGroupDisjointProperty(t *testing.T) {
	decl, _ := NewDeclustered(13, 4)
	inter, _ := NewInterleaved(13, 4)
	clus, _ := NewPrefetchParityDisk(12, 4)
	flat, _ := NewFlatUniform(12, 4, 12000)
	lays := []Layout{decl, inter, clus, flat}
	f := func(raw uint32) bool {
		x := int64(raw % 10000)
		for _, l := range lays {
			g := l.GroupOf(x)
			disks := map[int]bool{g.Parity.Disk: true}
			for _, a := range g.DataAddr {
				if disks[a.Disk] {
					return false
				}
				disks[a.Disk] = true
			}
			if len(g.Data) != l.GroupSize()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
