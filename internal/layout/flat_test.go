package layout

import "testing"

// figure3 pins the paper's Figure 3: d=9 disks, cluster size 3, parity
// group size 4, 54 data blocks D0..D53 and parity blocks P0..P17 where Pi
// protects D3i, D3i+1, D3i+2. Rows are disk blocks 0..7, columns disks
// 0..8; values >= 0 are data blocks, -(i+1) encodes parity block Pi.
var figure3 = [8][9]int64{
	{0, 1, 2, 3, 4, 5, 6, 7, 8},
	{9, 10, 11, 12, 13, 14, 15, 16, 17},
	{18, 19, 20, 21, 22, 23, 24, 25, 26},
	{27, 28, 29, 30, 31, 32, 33, 34, 35},
	{36, 37, 38, 39, 40, 41, 42, 43, 44},
	{45, 46, 47, 48, 49, 50, 51, 52, 53},
	{-11, -14, -17, -1, -4, -7, -10, -13, -16},
	{-3, -6, -9, -12, -15, -18, -2, -5, -8},
}

func flatFigure3(t *testing.T) *FlatUniform {
	t.Helper()
	l, err := NewFlatUniform(9, 4, 54)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFigure3GoldenData checks the data region placement (E3).
func TestFigure3GoldenData(t *testing.T) {
	l := flatFigure3(t)
	for blk := 0; blk < 6; blk++ {
		for disk := 0; disk < 9; disk++ {
			want := figure3[blk][disk]
			addr := BlockAddr{Disk: disk, Block: int64(blk)}
			if got := l.LogicalAt(addr); got != want {
				t.Errorf("LogicalAt(%v) = %d, want %d", addr, got, want)
			}
			if p := l.Place(want); p != addr {
				t.Errorf("Place(D%d) = %v, want %v", want, p, addr)
			}
		}
	}
}

// TestFigure3GoldenParity checks every parity position of Figure 3: Pi
// lives where the figure says, via GroupOf of its first data block.
func TestFigure3GoldenParity(t *testing.T) {
	l := flatFigure3(t)
	// Build want map: parity index -> address.
	want := map[int64]BlockAddr{}
	for blk := 6; blk < 8; blk++ {
		for disk := 0; disk < 9; disk++ {
			code := figure3[blk][disk]
			if code >= 0 {
				t.Fatalf("non-parity in parity region at disk %d blk %d", disk, blk)
			}
			want[-code-1] = BlockAddr{Disk: disk, Block: int64(blk)}
		}
	}
	for pi := int64(0); pi < 18; pi++ {
		g := l.GroupOf(3 * pi)
		if g.Parity != want[pi] {
			t.Errorf("P%d at %v, want %v", pi, g.Parity, want[pi])
		}
		// Group members are D3i, D3i+1, D3i+2.
		for k := 0; k < 3; k++ {
			if g.Data[k] != 3*pi+int64(k) {
				t.Errorf("P%d protects %v, want [%d %d %d]", pi, g.Data, 3*pi, 3*pi+1, 3*pi+2)
				break
			}
		}
	}
}

// TestFlatParityAddressesDistinct: no two groups share a parity address.
func TestFlatParityAddressesDistinct(t *testing.T) {
	l := flatFigure3(t)
	seen := map[BlockAddr]int64{}
	for pi := int64(0); pi < 18; pi++ {
		g := l.GroupOf(3 * pi)
		if prev, dup := seen[g.Parity]; dup {
			t.Fatalf("groups %d and %d share parity address %v", prev, pi, g.Parity)
		}
		seen[g.Parity] = pi
	}
}

// TestFlatParityNotInOwnCluster: a group's parity never lands on a disk of
// its own cluster (otherwise one disk failure could take both a data block
// and its parity).
func TestFlatParityNotInOwnCluster(t *testing.T) {
	for _, cfg := range []struct {
		d, p   int
		blocks int64
	}{{9, 4, 540}, {30, 4, 3000}, {28, 8, 2800}, {30, 16, 3000}, {32, 2, 320}} {
		l, err := NewFlatUniform(cfg.d, cfg.p, cfg.blocks)
		if err != nil {
			t.Fatalf("NewFlatUniform(%d,%d): %v", cfg.d, cfg.p, err)
		}
		for i := int64(0); i < cfg.blocks; i += int64(cfg.p - 1) {
			g := l.GroupOf(i)
			cluster := l.Place(i).Disk / (cfg.p - 1)
			pc := g.Parity.Disk / (cfg.p - 1)
			if pc == cluster {
				t.Fatalf("(%d,%d): group of %d has parity disk %d inside its own cluster", cfg.d, cfg.p, i, g.Parity.Disk)
			}
		}
	}
}

// TestFlatParityUniform: parity blocks rotate over all d−(p−1) candidate
// disks uniformly (the scheme's point versus [BGM95]'s adjacent-cluster
// placement).
func TestFlatParityUniform(t *testing.T) {
	l, err := NewFlatUniform(9, 4, 54*6)
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	total := 0
	for i := int64(0); i < l.DataBlocks(); i += 3 {
		g := l.GroupOf(i)
		count[g.Parity.Disk]++
		total++
	}
	want := total / 9
	for disk := 0; disk < 9; disk++ {
		if count[disk] != want {
			t.Errorf("disk %d holds %d parity blocks, want %d", disk, count[disk], want)
		}
	}
}

func TestFlatRoundTrip(t *testing.T) {
	l, err := NewFlatUniform(28, 8, 2800)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < l.DataBlocks(); i++ {
		addr := l.Place(i)
		if back := l.LogicalAt(addr); back != i {
			t.Fatalf("LogicalAt(Place(%d)) = %d", i, back)
		}
		if l.KindAt(addr) != Data {
			t.Fatalf("Place(%d) marked parity", i)
		}
	}
}

func TestFlatErrors(t *testing.T) {
	if _, err := NewFlatUniform(9, 5, 54); err == nil {
		t.Error("p−1 must divide d")
	}
	if _, err := NewFlatUniform(9, 1, 54); err == nil {
		t.Error("p >= 2 required")
	}
	if _, err := NewFlatUniform(9, 4, 0); err == nil {
		t.Error("dataBlocks must be positive")
	}
	if _, err := NewFlatUniform(3, 4, 54); err == nil {
		t.Error("d >= p required")
	}
	l := flatFigure3(t)
	mustPanic(t, func() { l.Place(-1) })
	mustPanic(t, func() { l.Place(54) }) // beyond capacity
}

func TestFlatRoundsUpToStripe(t *testing.T) {
	l, err := NewFlatUniform(9, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if l.DataBlocks() != 54 {
		t.Fatalf("DataBlocks = %d, want 54 (rounded to stripe)", l.DataBlocks())
	}
}

func TestFlatParityTargetClass(t *testing.T) {
	l := flatFigure3(t)
	// d−(p−1) = 6 classes; level g class = g mod 6.
	for g := int64(0); g < 12; g++ {
		if got := l.ParityTargetClass(g); got != int(g%6) {
			t.Fatalf("ParityTargetClass(%d) = %d", g, got)
		}
	}
	// Same class => same parity disk offset: groups of cluster 0 at levels
	// 0 and 6 share a parity disk.
	g0 := l.GroupOf(0)
	l2, err := NewFlatUniform(9, 4, 54*2)
	if err != nil {
		t.Fatal(err)
	}
	g6 := l2.GroupOf(6 * 9) // cluster 0, level 6
	if g0.Parity.Disk != g6.Parity.Disk {
		t.Fatalf("levels 0 and 6 of cluster 0 use parity disks %d and %d, want equal", g0.Parity.Disk, g6.Parity.Disk)
	}
}
