package layout

import "testing"

// FuzzDeclusteredRoundTrip: Place/LogicalAt stay inverse for arbitrary
// block indices across several geometries, including the approximate
// designs of the paper's evaluation.
func FuzzDeclusteredRoundTrip(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(41))
	f.Add(uint16(65535))
	geometries := []struct{ d, p int }{{7, 3}, {13, 4}, {32, 8}, {32, 2}, {32, 32}}
	layouts := make([]*Declustered, len(geometries))
	for i, g := range geometries {
		l, err := NewDeclustered(g.d, g.p)
		if err != nil {
			f.Fatal(err)
		}
		layouts[i] = l
	}
	f.Fuzz(func(t *testing.T, raw uint16) {
		x := int64(raw)
		for i, l := range layouts {
			addr := l.Place(x)
			if back := l.LogicalAt(addr); back != x {
				t.Fatalf("geometry %v: LogicalAt(Place(%d)) = %d", geometries[i], x, back)
			}
			g := l.GroupOf(x)
			if len(g.Data) != geometries[i].p-1 {
				t.Fatalf("geometry %v: group size %d", geometries[i], len(g.Data))
			}
		}
	})
}

// FuzzClusteredInverse: arbitrary addresses decode consistently — every
// address is either parity or decodes to a block that places back to it.
func FuzzClusteredInverse(f *testing.F) {
	l, err := NewPrefetchParityDisk(8, 4)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), uint16(0))
	f.Add(uint8(7), uint16(9999))
	f.Fuzz(func(t *testing.T, diskRaw uint8, blockRaw uint16) {
		addr := BlockAddr{Disk: int(diskRaw) % 8, Block: int64(blockRaw)}
		x := l.LogicalAt(addr)
		if x < 0 {
			if !l.IsParityDisk(addr.Disk) {
				t.Fatalf("data-disk address %v decoded as parity", addr)
			}
			return
		}
		if l.Place(x) != addr {
			t.Fatalf("Place(LogicalAt(%v)) = %v", addr, l.Place(x))
		}
	})
}
