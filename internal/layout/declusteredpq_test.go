package layout

import "testing"

// pqGeometries covers an exact λ=1 design (the order-3 projective
// plane) and an approximate rotational one.
var pqGeometries = [][2]int{{13, 4}, {8, 4}, {9, 3}, {7, 3}}

func TestDeclusteredPQRoundTrip(t *testing.T) {
	for _, g := range pqGeometries {
		l, err := NewDeclusteredPQ(g[0], g[1])
		if err != nil {
			t.Fatalf("NewDeclusteredPQ(%d, %d): %v", g[0], g[1], err)
		}
		for i := int64(0); i < 600; i++ {
			addr := l.Place(i)
			if got := l.LogicalAt(addr); got != i {
				t.Fatalf("(%d,%d): LogicalAt(Place(%d)) = %d", g[0], g[1], i, got)
			}
			if l.KindAt(addr) != Data {
				t.Fatalf("(%d,%d): Place(%d) decodes as parity", g[0], g[1], i)
			}
		}
	}
}

// TestDeclusteredPQNoCollisions checks that over a prefix of the store,
// data, P and Q addresses never collide — two parity columns per group
// must claim disjoint disk blocks.
func TestDeclusteredPQNoCollisions(t *testing.T) {
	for _, g := range pqGeometries {
		l, err := NewDeclusteredPQ(g[0], g[1])
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[BlockAddr]string)
		claim := func(a BlockAddr, what string) {
			if prev, dup := seen[a]; dup && prev != what {
				t.Fatalf("(%d,%d): %v claimed as both %s and %s", g[0], g[1], a, prev, what)
			}
			seen[a] = what
		}
		for i := int64(0); i < 400; i++ {
			grp := l.GroupOf(i)
			if !grp.HasQ {
				t.Fatal("GroupOf without HasQ")
			}
			if grp.Parity == grp.Q {
				t.Fatalf("(%d,%d): P and Q share %v", g[0], g[1], grp.Parity)
			}
			if grp.Parity.Disk == grp.Q.Disk {
				t.Fatalf("(%d,%d): P and Q on same disk %d", g[0], g[1], grp.Parity.Disk)
			}
			claim(grp.Parity, "parity")
			claim(grp.Q, "q")
			for k, li := range grp.Data {
				claim(grp.DataAddr[k], "data")
				if back := l.LogicalAt(grp.DataAddr[k]); back != li {
					t.Fatalf("group member decode: got %d want %d", back, li)
				}
			}
		}
	}
}

// TestDeclusteredPQGroupInvariants: every group has p−2 data members,
// one disk per member, and block i is a member of its own group.
func TestDeclusteredPQGroupInvariants(t *testing.T) {
	for _, g := range pqGeometries {
		d, p := g[0], g[1]
		l, err := NewDeclusteredPQ(d, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 400; i++ {
			grp := l.GroupOf(i)
			if len(grp.Data) != p-2 || len(grp.DataAddr) != p-2 {
				t.Fatalf("(%d,%d): group of %d has %d data members, want %d", d, p, i, len(grp.Data), p-2)
			}
			disks := map[int]bool{grp.Parity.Disk: true, grp.Q.Disk: true}
			self := false
			for k, li := range grp.Data {
				if disks[grp.DataAddr[k].Disk] {
					t.Fatalf("(%d,%d): duplicate member disk %d", d, p, grp.DataAddr[k].Disk)
				}
				disks[grp.DataAddr[k].Disk] = true
				if li == i {
					self = true
				}
			}
			if !self {
				t.Fatalf("(%d,%d): block %d missing from its own group", d, p, i)
			}
			if l.KindAt(grp.Parity) != Parity || l.KindAt(grp.Q) != Parity {
				t.Fatalf("(%d,%d): parity block decodes as data", d, p)
			}
		}
	}
}

// TestDeclusteredPQParityShare: over whole rotation periods, every disk
// of a set carries P exactly once and Q exactly once per period, so
// parity load spreads evenly — the declustering property the scheme
// keeps under double parity.
func TestDeclusteredPQParityShare(t *testing.T) {
	l, err := NewDeclusteredPQ(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	tab := l.Table
	p := tab.P
	for s := 0; s < 4; s++ {
		pCount := make(map[int]int)
		qCount := make(map[int]int)
		for n := 0; n < p; n++ {
			pd, qd := tab.ParityDisk(s, n), tab.ParityDiskQ(s, n)
			if pd == qd {
				t.Fatalf("set %d window %d: P and Q both on disk %d", s, n, pd)
			}
			pCount[pd]++
			qCount[qd]++
		}
		for _, m := range tab.Disks(s) {
			if pCount[m] != 1 || qCount[m] != 1 {
				t.Fatalf("set %d: disk %d carries P %d times, Q %d times per period", s, m, pCount[m], qCount[m])
			}
		}
	}
}

func TestDeclusteredPQErrors(t *testing.T) {
	if _, err := NewDeclusteredPQ(7, 2); err == nil {
		t.Fatal("p=2 accepted: a P+Q group needs at least one data block")
	}
	if _, err := NewDeclusteredPQ(1, 3); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}
