package integrity

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
)

func TestSumIsCastagnoli(t *testing.T) {
	data := []byte("continuous media server")
	want := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	if got := Sum(data); got != want {
		t.Fatalf("Sum = %08x, want CRC-32C %08x", got, want)
	}
	if ieee := crc32.ChecksumIEEE(data); Sum(data) == ieee {
		t.Fatalf("Sum matches IEEE polynomial; want Castagnoli")
	}
}

func TestMapRecordVerify(t *testing.T) {
	m := NewMap()
	data := make([]byte, 512)
	rand.New(rand.NewSource(1)).Read(data)

	// Unrecorded blocks verify trivially: the map only vouches for
	// blocks it has seen written.
	if err := m.Verify(0, 7, data); err != nil {
		t.Fatalf("Verify of unrecorded block: %v", err)
	}
	if m.Has(0, 7) {
		t.Fatalf("Has(0,7) = true before Record")
	}

	m.Record(0, 7, data)
	if !m.Has(0, 7) {
		t.Fatalf("Has(0,7) = false after Record")
	}
	if err := m.Verify(0, 7, data); err != nil {
		t.Fatalf("Verify of intact block: %v", err)
	}

	// Any single-bit flip must be detected.
	flipped := append([]byte(nil), data...)
	flipped[100] ^= 0x10
	if err := m.Verify(0, 7, flipped); !errors.Is(err, ErrMismatch) {
		t.Fatalf("Verify of flipped block = %v, want ErrMismatch", err)
	}

	// Overwrite re-records.
	m.Record(0, 7, flipped)
	if err := m.Verify(0, 7, flipped); err != nil {
		t.Fatalf("Verify after re-record: %v", err)
	}

	st := m.Stats()
	if st.Recorded != 2 || st.Verified != 2 || st.Mismatches != 1 {
		t.Fatalf("Stats = %+v, want recorded=2 verified=2 mismatches=1", st)
	}
}

func TestMapKeysAreIndependent(t *testing.T) {
	m := NewMap()
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	m.Record(0, 0, a)
	m.Record(1, 0, b)
	if err := m.Verify(0, 0, a); err != nil {
		t.Fatalf("disk 0: %v", err)
	}
	if err := m.Verify(1, 0, b); err != nil {
		t.Fatalf("disk 1: %v", err)
	}
	if err := m.Verify(0, 0, b); !errors.Is(err, ErrMismatch) {
		t.Fatalf("cross-disk verify = %v, want ErrMismatch", err)
	}
}

func TestMapDrop(t *testing.T) {
	m := NewMap()
	data := []byte("x")
	m.Record(2, 1, data)
	m.Record(2, 9, data)
	m.Record(3, 1, data)

	m.Drop(2, 1)
	if m.Has(2, 1) {
		t.Fatalf("Has(2,1) after Drop")
	}
	if !m.Has(2, 9) || !m.Has(3, 1) {
		t.Fatalf("Drop removed unrelated records")
	}

	m.DropDisk(2)
	if m.Has(2, 9) {
		t.Fatalf("Has(2,9) after DropDisk(2)")
	}
	if !m.Has(3, 1) {
		t.Fatalf("DropDisk(2) removed disk 3's record")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}

	// Dropped blocks verify trivially again — the spare has no history.
	if err := m.Verify(2, 9, []byte("anything")); err != nil {
		t.Fatalf("Verify after DropDisk: %v", err)
	}
}

func TestMapConcurrent(t *testing.T) {
	m := NewMap()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			data := []byte{byte(g)}
			for i := int64(0); i < 200; i++ {
				m.Record(g, i, data)
				if err := m.Verify(g, i, data); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if i%10 == 0 {
					m.Drop(g, i)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
