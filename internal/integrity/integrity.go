// Package integrity provides the per-block checksum layer that closes
// the gap in the paper's loud-failure fault model: disks that return
// *wrong* bytes without an error. Every block written to the array is
// summed with CRC-32C (Castagnoli — hardware-accelerated on amd64/arm64
// via hash/crc32's table-driven kernels); every read is re-summed and
// compared, so silent bit rot surfaces as a checksum mismatch instead
// of propagating into streams or, worse, XOR reconstructions.
//
// The package is deliberately storage-agnostic: a Map keys sums by
// (disk, block) and knows nothing about disk state or parity. The
// storage.Array owns a Map and maintains it on the write path; the
// read path calls Verify and translates ErrMismatch into
// storage.ErrCorruptBlock for the detector and repair machinery.
package integrity

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// ErrMismatch is returned by Verify when a block's contents no longer
// match its recorded checksum.
var ErrMismatch = errors.New("integrity: checksum mismatch")

// castagnoli is the CRC-32C table shared by all sums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sum returns the CRC-32C (Castagnoli) checksum of data.
func Sum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

type key struct {
	disk  int
	block int64
}

// Map records one checksum per (disk, block) address. Safe for
// concurrent use. The zero value is not usable; call NewMap.
type Map struct {
	mu   sync.RWMutex
	sums map[key]uint32

	// counters for Stats; atomic so Verify — on the hot read path,
	// possibly from several tick shards at once — never takes the write
	// lock.
	recorded   atomic.Int64
	verified   atomic.Int64
	mismatches atomic.Int64
}

// Stats is a snapshot of a Map's counters.
type Stats struct {
	// Recorded counts checksum records (one per write, including
	// overwrites).
	Recorded int64
	// Verified counts successful verifications.
	Verified int64
	// Mismatches counts verifications that failed.
	Mismatches int64
}

// NewMap creates an empty checksum map.
func NewMap() *Map {
	return &Map{sums: make(map[key]uint32)}
}

// Record stores the checksum of data for (disk, block), replacing any
// previous record.
func (m *Map) Record(disk int, block int64, data []byte) {
	sum := Sum(data)
	m.mu.Lock()
	m.sums[key{disk, block}] = sum
	m.mu.Unlock()
	m.recorded.Add(1)
}

// Has reports whether a checksum is recorded for (disk, block).
func (m *Map) Has(disk int, block int64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.sums[key{disk, block}]
	return ok
}

// Verify re-sums data and compares it against the record for
// (disk, block). A missing record verifies trivially (nil): the map
// only vouches for blocks it has seen written. On mismatch it returns
// an error wrapping ErrMismatch.
func (m *Map) Verify(disk int, block int64, data []byte) error {
	m.mu.RLock()
	want, ok := m.sums[key{disk, block}]
	m.mu.RUnlock()
	if !ok {
		return nil
	}
	got := Sum(data)
	if got == want {
		m.verified.Add(1)
		return nil
	}
	m.mismatches.Add(1)
	return fmt.Errorf("integrity: disk %d block %d: sum %08x, want %08x: %w",
		disk, block, got, want, ErrMismatch)
}

// Drop forgets the record for (disk, block).
func (m *Map) Drop(disk int, block int64) {
	m.mu.Lock()
	delete(m.sums, key{disk, block})
	m.mu.Unlock()
}

// DropDisk forgets every record for the disk — called when a spare is
// swapped in (Replace) or a drive is erased (Repair): the new medium
// holds none of the old blocks, and the rebuild re-records sums as it
// refills them.
func (m *Map) DropDisk(disk int) {
	m.mu.Lock()
	for k := range m.sums {
		if k.disk == disk {
			delete(m.sums, k)
		}
	}
	m.mu.Unlock()
}

// Len returns the number of recorded checksums.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sums)
}

// Stats returns a counter snapshot.
func (m *Map) Stats() Stats {
	return Stats{
		Recorded:   m.recorded.Load(),
		Verified:   m.verified.Load(),
		Mismatches: m.mismatches.Load(),
	}
}
