// Package faultinject turns the storage array's single fail-stop switch
// into a programmable fault model. A Plan scripts, deterministically and
// reproducibly from a seed, the fault regimes real arrays exhibit beyond
// the paper's instant fail-stop assumption:
//
//   - FailStop: every read of a disk hard-errors from a given round on —
//     the paper's §2 failure, but *undetected* until the health layer
//     notices (the array's failure flag is NOT set by the injector).
//   - BadBlock: a latent sector error — one block unreadable, the rest of
//     the disk fine. The cure is per-block reconstruction, not disk
//     failure.
//   - Transient: reads error with probability p inside a round window —
//     a flaky cable or a recovering head. Retries may succeed.
//   - Slow: reads succeed but take a multiple of their nominal service
//     time inside a window — the "limping disk" that timeout detection,
//     not error counting, must catch.
//   - SilentCorruption: bits of a stored block flip at rest and the read
//     returns wrong bytes with NO error — the one fault the ReadHook
//     cannot express (hooks may veto a read, not rewrite its data).
//     The injector therefore emits CorruptionOrders via CorruptionsDue,
//     which the round driver applies to the array with CorruptBits;
//     only the checksum layer ever notices.
//
// The Injector compiles a Plan into a storage.ReadHook. It keeps its own
// round clock, advanced by whoever drives rounds (core.Server ticks it);
// all randomness is drawn from the plan's seed, so a given plan and read
// sequence replays exactly.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"

	"ftcms/internal/storage"
)

// FailStop fails every read of Disk from round Round onward (writes are
// unaffected — detection, not the injector, fail-stops the device).
type FailStop struct {
	Disk  int
	Round int64
}

// BadBlock makes one block of a healthy disk unreadable (ErrBadBlock)
// until cleared — a latent sector error. A rewrite of the block remaps
// the sector: the injector clears the entry when told via ClearBadBlock.
type BadBlock struct {
	Disk  int
	Block int64
}

// Transient makes reads of Disk fail with probability Prob during rounds
// [From, Until) (Until == 0 means forever). The errors are hard
// (storage.ErrFailed) but non-sticky: a retry re-rolls.
type Transient struct {
	Disk        int
	Prob        float64
	From, Until int64
}

// Slow multiplies the service time of reads of Disk by Factor during
// rounds [From, Until) (Until == 0 means forever). Reads still return
// correct data; only timing degrades.
type Slow struct {
	Disk        int
	Factor      float64
	From, Until int64
}

// SilentCorruption scripts at-rest bit rot on a disk. With Block >= 0
// it flips bits of that one block exactly once, at the first round at
// or after From the injector sees. With Block < 0 it runs a per-round
// Rate coin during [From, Until) (Until == 0 means forever) and, on
// heads, corrupts one pseudo-randomly chosen written block. Bits is the
// number of distinct bit positions to flip (0 selects 1). The flips are
// silent: reads of the block succeed at the device level and only the
// checksum layer can tell.
type SilentCorruption struct {
	Disk        int
	Block       int64
	Rate        float64
	From, Until int64
	// Bits is how many distinct bits flip per corruption event.
	Bits int
}

// CorruptionOrder is one bit-flip the driver must apply to the array
// (storage.Array.CorruptBits / CorruptRandomBlock). Block < 0 means
// "some written block", selected by Pick over the disk's written blocks
// in ascending order.
type CorruptionOrder struct {
	Disk  int
	Block int64
	Pick  uint64
	Bits  []uint64
}

// Plan scripts a run's faults. The zero value injects nothing.
type Plan struct {
	// Seed drives the transient-error and corruption coin flips.
	Seed        int64
	FailStops   []FailStop
	BadBlocks   []BadBlock
	Transients  []Transient
	Slows       []Slow
	Corruptions []SilentCorruption
}

// Overlap schedules the double-failure scenario the P+Q scheme is built
// for: disk1 fail-stops at round, disk2 follows within window rounds
// (window 0 means the same round — a simultaneous double failure). The
// plan gains two FailStops; pick two disks of one parity group to make
// the overlap actually stress a group's second redundancy column.
func (p *Plan) Overlap(disk1, disk2 int, round, window int64) {
	p.FailStops = append(p.FailStops,
		FailStop{Disk: disk1, Round: round},
		FailStop{Disk: disk2, Round: round + window},
	)
}

// Stats counts what the injector actually did, for test assertions.
type Stats struct {
	// HardErrors counts injected fail-stop and transient read errors.
	HardErrors int64
	// BadBlockErrors counts injected latent-sector errors.
	BadBlockErrors int64
	// SlowReads counts reads that were slowed.
	SlowReads int64
	// Corruptions counts silent-corruption orders emitted.
	Corruptions int64
}

// Injector applies a Plan to an array's reads. Install its Hook with
// storage.Array.SetReadHook and advance its clock with SetRound. Safe
// for concurrent use.
type Injector struct {
	mu    sync.Mutex
	plan  Plan
	rng   *rand.Rand
	round int64
	bad   map[[2]int64]bool // (disk, block) → latent error active
	corr  []corruptionEntry
	stats Stats
}

// corruptionEntry is a SilentCorruption plus its one-shot latch.
type corruptionEntry struct {
	SilentCorruption
	fired bool // explicit-block entries corrupt exactly once
}

// New compiles a plan. The plan is copied; later mutations go through
// the Add* methods.
func New(plan Plan) *Injector {
	in := &Injector{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed)),
		bad:  make(map[[2]int64]bool),
	}
	for _, b := range plan.BadBlocks {
		in.bad[[2]int64{int64(b.Disk), b.Block}] = true
	}
	for _, c := range plan.Corruptions {
		in.corr = append(in.corr, corruptionEntry{SilentCorruption: c})
	}
	return in
}

// SetRound moves the injector's round clock; round-scoped events key off
// it. The driver calls this once per service round.
func (in *Injector) SetRound(r int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.round = r
}

// Round returns the injector's current round.
func (in *Injector) Round() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.round
}

// AddFailStop schedules a fail-stop at runtime (the cmserve FAIL demo
// alias injects through this).
func (in *Injector) AddFailStop(f FailStop) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.FailStops = append(in.plan.FailStops, f)
}

// AddBadBlock marks a block as latently unreadable at runtime.
func (in *Injector) AddBadBlock(b BadBlock) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.bad[[2]int64{int64(b.Disk), b.Block}] = true
}

// AddTransient schedules a transient-error window at runtime.
func (in *Injector) AddTransient(tr Transient) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.Transients = append(in.plan.Transients, tr)
}

// AddSlow schedules a slow-disk window at runtime.
func (in *Injector) AddSlow(s Slow) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan.Slows = append(in.plan.Slows, s)
}

// AddSilentCorruption schedules at-rest bit rot at runtime (the cmserve
// CORRUPT demo alias injects through this).
func (in *Injector) AddSilentCorruption(c SilentCorruption) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.corr = append(in.corr, corruptionEntry{SilentCorruption: c})
}

// CorruptionsDue returns the silent-corruption orders due at the current
// round, advancing each entry's state: explicit-block entries fire once
// at the first round ≥ From; rate entries roll their per-round coin. The
// round driver must call this exactly once per round, after SetRound and
// before serving reads, so the seeded RNG sequence stays reproducible.
func (in *Injector) CorruptionsDue() []CorruptionOrder {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []CorruptionOrder
	for i := range in.corr {
		c := &in.corr[i]
		if c.Block >= 0 {
			if !c.fired && in.round >= c.From {
				c.fired = true
				out = append(out, CorruptionOrder{Disk: c.Disk, Block: c.Block, Bits: in.randBits(c.Bits)})
			}
			continue
		}
		if window(in.round, c.From, c.Until) && in.rng.Float64() < c.Rate {
			out = append(out, CorruptionOrder{Disk: c.Disk, Block: -1, Pick: in.rng.Uint64(), Bits: in.randBits(c.Bits)})
		}
	}
	in.stats.Corruptions += int64(len(out))
	return out
}

// randBits draws n distinct pseudo-random bit offsets (n ≤ 0 selects 1).
// Distinctness matters: two flips of the same bit cancel, and an order
// that nets out to zero flips would be "corruption" nothing can detect.
func (in *Injector) randBits(n int) []uint64 {
	if n <= 0 {
		n = 1
	}
	bits := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for len(bits) < n {
		b := in.rng.Uint64()
		if seen[b] {
			continue
		}
		seen[b] = true
		bits = append(bits, b)
	}
	return bits
}

// ClearBadBlock removes a latent error — the model of a sector remap
// after the block is reconstructed and rewritten.
func (in *Injector) ClearBadBlock(disk int, block int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.bad, [2]int64{int64(disk), block})
}

// ClearDisk removes every scripted fault targeting the disk — the model
// of physically swapping a spare in for the failed device. The new drive
// inherits none of the old one's fail-stops, bad blocks, transients or
// slowdowns; events added afterwards target the new disk normally.
func (in *Injector) ClearDisk(disk int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	filterFS := in.plan.FailStops[:0]
	for _, f := range in.plan.FailStops {
		if f.Disk != disk {
			filterFS = append(filterFS, f)
		}
	}
	in.plan.FailStops = filterFS
	filterTR := in.plan.Transients[:0]
	for _, tr := range in.plan.Transients {
		if tr.Disk != disk {
			filterTR = append(filterTR, tr)
		}
	}
	in.plan.Transients = filterTR
	filterSL := in.plan.Slows[:0]
	for _, sl := range in.plan.Slows {
		if sl.Disk != disk {
			filterSL = append(filterSL, sl)
		}
	}
	in.plan.Slows = filterSL
	filterCO := in.corr[:0]
	for _, c := range in.corr {
		if c.Disk != disk {
			filterCO = append(filterCO, c)
		}
	}
	in.corr = filterCO
	for key := range in.bad {
		if key[0] == int64(disk) {
			delete(in.bad, key)
		}
	}
}

// QuiescentAt reports whether the injector is provably inert for every
// read of round r: no verdict, no slowdown, no RNG draw, and no latent
// damage already landed on the array. The sharded tick uses it as a
// parallel-safety gate, so it errs on the side of false:
//
//   - any latent bad block or any corruption entry (fired or not — a
//     fired entry means rotten bytes may still sit on the array) makes
//     every future round non-quiescent;
//   - a fail-stop is non-quiescent from its round on (the array flag is
//     not set until detection, so reads really do error);
//   - transient and slow windows are non-quiescent while open —
//     transients also draw from the seeded RNG per read, which must
//     stay sequenced.
func (in *Injector) QuiescentAt(r int64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.bad) > 0 || len(in.corr) > 0 {
		return false
	}
	for _, f := range in.plan.FailStops {
		if r >= f.Round {
			return false
		}
	}
	for _, tr := range in.plan.Transients {
		if window(r, tr.From, tr.Until) {
			return false
		}
	}
	for _, sl := range in.plan.Slows {
		if sl.Factor > 1 && window(r, sl.From, sl.Until) {
			return false
		}
	}
	return true
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

func window(round, from, until int64) bool {
	return round >= from && (until == 0 || round < until)
}

// Hook is the storage.ReadHook: it decides, per physical read, whether
// to inject an error and/or a slowdown. Precedence: fail-stop, then bad
// block, then transient; slowdowns stack multiplicatively with whichever
// verdict wins (a limping disk limps even while erroring).
func (in *Injector) Hook(disk int, block int64) (float64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	slow := 1.0
	for _, s := range in.plan.Slows {
		if s.Disk == disk && s.Factor > 1 && window(in.round, s.From, s.Until) {
			slow *= s.Factor
		}
	}
	if slow > 1 {
		in.stats.SlowReads++
	}
	for _, f := range in.plan.FailStops {
		if f.Disk == disk && in.round >= f.Round {
			in.stats.HardErrors++
			return slow, fmt.Errorf("faultinject: fail-stop disk %d (round %d): %w", disk, in.round, storage.ErrFailed)
		}
	}
	if in.bad[[2]int64{int64(disk), block}] {
		in.stats.BadBlockErrors++
		return slow, fmt.Errorf("faultinject: latent error disk %d block %d: %w", disk, block, storage.ErrBadBlock)
	}
	for _, tr := range in.plan.Transients {
		if tr.Disk == disk && window(in.round, tr.From, tr.Until) && in.rng.Float64() < tr.Prob {
			in.stats.HardErrors++
			return slow, fmt.Errorf("faultinject: transient error disk %d (round %d): %w", disk, in.round, storage.ErrFailed)
		}
	}
	return slow, nil
}
