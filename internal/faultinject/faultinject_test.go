package faultinject

import (
	"errors"
	"testing"

	"ftcms/internal/storage"
)

func TestFailStopFiresFromRound(t *testing.T) {
	in := New(Plan{FailStops: []FailStop{{Disk: 2, Round: 5}}})
	if _, err := in.Hook(2, 0); err != nil {
		t.Fatalf("round 0: %v", err)
	}
	in.SetRound(5)
	if _, err := in.Hook(2, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("round 5: %v, want ErrFailed", err)
	}
	if _, err := in.Hook(1, 0); err != nil {
		t.Fatalf("other disk: %v", err)
	}
	in.SetRound(100)
	if _, err := in.Hook(2, 9); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("round 100: %v, want ErrFailed (fail-stop is permanent)", err)
	}
	if got := in.Stats().HardErrors; got != 2 {
		t.Fatalf("HardErrors = %d, want 2", got)
	}
}

func TestBadBlockAndClear(t *testing.T) {
	in := New(Plan{BadBlocks: []BadBlock{{Disk: 1, Block: 7}}})
	if _, err := in.Hook(1, 7); !errors.Is(err, storage.ErrBadBlock) {
		t.Fatalf("bad block: %v, want ErrBadBlock", err)
	}
	if _, err := in.Hook(1, 8); err != nil {
		t.Fatalf("neighbouring block: %v", err)
	}
	in.ClearBadBlock(1, 7)
	if _, err := in.Hook(1, 7); err != nil {
		t.Fatalf("after clear: %v", err)
	}
	if got := in.Stats().BadBlockErrors; got != 1 {
		t.Fatalf("BadBlockErrors = %d, want 1", got)
	}
}

func TestTransientIsProbabilisticAndDeterministic(t *testing.T) {
	count := func(seed int64) int {
		in := New(Plan{Seed: seed, Transients: []Transient{{Disk: 0, Prob: 0.5, From: 0}}})
		n := 0
		for i := 0; i < 1000; i++ {
			if _, err := in.Hook(0, int64(i)); err != nil {
				if !errors.Is(err, storage.ErrFailed) {
					t.Fatalf("transient error kind: %v", err)
				}
				n++
			}
		}
		return n
	}
	a, b := count(42), count(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 350 || a > 650 {
		t.Fatalf("p=0.5 over 1000 reads injected %d errors", a)
	}
	if c := count(43); c == a {
		t.Logf("different seeds coincided (possible but unlikely): %d", c)
	}
}

func TestTransientWindow(t *testing.T) {
	in := New(Plan{Seed: 1, Transients: []Transient{{Disk: 0, Prob: 1, From: 10, Until: 20}}})
	check := func(round int64, wantErr bool) {
		t.Helper()
		in.SetRound(round)
		_, err := in.Hook(0, 0)
		if (err != nil) != wantErr {
			t.Fatalf("round %d: err=%v, wantErr=%v", round, err, wantErr)
		}
	}
	check(9, false)
	check(10, true)
	check(19, true)
	check(20, false)
}

func TestSlowWindowStacksWithErrors(t *testing.T) {
	in := New(Plan{
		Slows:      []Slow{{Disk: 3, Factor: 4, From: 0, Until: 0}},
		Transients: []Transient{{Disk: 3, Prob: 1, From: 5}},
	})
	slow, err := in.Hook(3, 0)
	if err != nil || slow != 4 {
		t.Fatalf("healthy slow read: slow=%v err=%v, want 4, nil", slow, err)
	}
	in.SetRound(5)
	slow, err = in.Hook(3, 0)
	if !errors.Is(err, storage.ErrFailed) || slow != 4 {
		t.Fatalf("slow+transient: slow=%v err=%v, want 4, ErrFailed", slow, err)
	}
	if got := in.Stats().SlowReads; got != 2 {
		t.Fatalf("SlowReads = %d, want 2", got)
	}
}

func TestRuntimeMutation(t *testing.T) {
	in := New(Plan{})
	in.SetRound(3)
	if _, err := in.Hook(0, 0); err != nil {
		t.Fatal(err)
	}
	in.AddFailStop(FailStop{Disk: 0, Round: 4})
	in.AddBadBlock(BadBlock{Disk: 1, Block: 2})
	in.AddTransient(Transient{Disk: 2, Prob: 1, From: 0})
	in.AddSlow(Slow{Disk: 3, Factor: 2})
	if _, err := in.Hook(0, 0); err != nil {
		t.Fatalf("fail-stop fired before its round: %v", err)
	}
	in.SetRound(4)
	if _, err := in.Hook(0, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("added fail-stop: %v", err)
	}
	if _, err := in.Hook(1, 2); !errors.Is(err, storage.ErrBadBlock) {
		t.Fatalf("added bad block: %v", err)
	}
	if _, err := in.Hook(2, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("added transient: %v", err)
	}
	if slow, _ := in.Hook(3, 0); slow != 2 {
		t.Fatalf("added slow: %v", slow)
	}
}

// TestHookOnArray wires the injector into a real array end-to-end.
func TestHookOnArray(t *testing.T) {
	arr, err := storage.NewArray(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for d := 0; d < 4; d++ {
		if err := arr.Write(d, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	in := New(Plan{
		FailStops: []FailStop{{Disk: 0, Round: 1}},
		BadBlocks: []BadBlock{{Disk: 1, Block: 0}},
		Slows:     []Slow{{Disk: 2, Factor: 8}},
	})
	arr.SetReadHook(in.Hook)
	in.SetRound(1)
	if _, err := arr.Read(0, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("fail-stop via array: %v", err)
	}
	if arr.Failed(0) {
		t.Fatal("injector must not set the array's failure flag — detection does")
	}
	if _, err := arr.Read(1, 0); !errors.Is(err, storage.ErrBadBlock) {
		t.Fatalf("bad block via array: %v", err)
	}
	_, slow, err := arr.ReadTimed(2, 0)
	if err != nil || slow != 8 {
		t.Fatalf("slow read via array: slow=%v err=%v", slow, err)
	}
	if _, err := arr.Read(3, 0); err != nil {
		t.Fatalf("untouched disk: %v", err)
	}
}

func TestOverlapSchedulesTwoFailStops(t *testing.T) {
	var plan Plan
	plan.Overlap(3, 7, 10, 2)
	if len(plan.FailStops) != 2 {
		t.Fatalf("Overlap added %d fail-stops, want 2", len(plan.FailStops))
	}
	in := New(plan)
	// Before the window: both disks answer.
	in.SetRound(9)
	if _, err := in.Hook(3, 0); err != nil {
		t.Fatalf("disk 3 round 9: %v", err)
	}
	// First failure lands at round 10, the second not yet.
	in.SetRound(10)
	if _, err := in.Hook(3, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("disk 3 round 10: %v, want ErrFailed", err)
	}
	if _, err := in.Hook(7, 0); err != nil {
		t.Fatalf("disk 7 round 10: %v (window not elapsed)", err)
	}
	// Second failure overlaps the first at round 10+2.
	in.SetRound(12)
	if _, err := in.Hook(7, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("disk 7 round 12: %v, want ErrFailed", err)
	}
	if _, err := in.Hook(3, 0); !errors.Is(err, storage.ErrFailed) {
		t.Fatalf("disk 3 round 12: %v, want ErrFailed (still down)", err)
	}
}

func TestOverlapAppendsToExistingPlan(t *testing.T) {
	plan := Plan{FailStops: []FailStop{{Disk: 0, Round: 1}}}
	plan.Overlap(4, 5, 20, 1)
	if len(plan.FailStops) != 3 {
		t.Fatalf("FailStops = %d, want 3 (Overlap must append, not replace)", len(plan.FailStops))
	}
}
