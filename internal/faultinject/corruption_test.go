package faultinject

import (
	"errors"
	"testing"

	"ftcms/internal/storage"
)

func TestSilentCorruptionExplicitBlockFiresOnce(t *testing.T) {
	in := New(Plan{Seed: 1, Corruptions: []SilentCorruption{
		{Disk: 2, Block: 5, From: 3, Bits: 2},
	}})
	for r := int64(0); r < 3; r++ {
		in.SetRound(r)
		if due := in.CorruptionsDue(); len(due) != 0 {
			t.Fatalf("round %d: orders %v before From", r, due)
		}
	}
	in.SetRound(3)
	due := in.CorruptionsDue()
	if len(due) != 1 {
		t.Fatalf("round 3: %d orders, want 1", len(due))
	}
	o := due[0]
	if o.Disk != 2 || o.Block != 5 || len(o.Bits) != 2 {
		t.Fatalf("order = %+v, want disk 2 block 5 with 2 bits", o)
	}
	if o.Bits[0] == o.Bits[1] {
		t.Fatalf("order bits %v not distinct", o.Bits)
	}
	// One-shot: never again, even on later rounds.
	for r := int64(4); r < 8; r++ {
		in.SetRound(r)
		if due := in.CorruptionsDue(); len(due) != 0 {
			t.Fatalf("round %d: explicit entry refired: %v", r, due)
		}
	}
	if got := in.Stats().Corruptions; got != 1 {
		t.Fatalf("Stats.Corruptions = %d, want 1", got)
	}
}

func TestSilentCorruptionRateIsSeededAndWindowed(t *testing.T) {
	plan := Plan{Seed: 42, Corruptions: []SilentCorruption{
		{Disk: 0, Block: -1, Rate: 0.5, From: 10, Until: 60},
	}}
	collect := func() []CorruptionOrder {
		in := New(plan)
		var all []CorruptionOrder
		for r := int64(0); r < 100; r++ {
			in.SetRound(r)
			all = append(all, in.CorruptionsDue()...)
		}
		return all
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatalf("rate 0.5 over 50 rounds emitted nothing")
	}
	if len(a) >= 50 {
		t.Fatalf("rate 0.5 emitted %d orders in a 50-round window", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d orders", len(a), len(b))
	}
	for i := range a {
		if a[i].Disk != b[i].Disk || a[i].Pick != b[i].Pick || a[i].Bits[0] != b[i].Bits[0] {
			t.Fatalf("order %d differs across replays: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Block != -1 {
			t.Fatalf("rate order %d has explicit block %d", i, a[i].Block)
		}
	}
}

func TestSilentCorruptionLandsOnArrayUndetectedByHook(t *testing.T) {
	arr, err := storage.NewArray(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	if err := arr.Write(1, 7, data); err != nil {
		t.Fatal(err)
	}

	in := New(Plan{Seed: 3, Corruptions: []SilentCorruption{{Disk: 1, Block: 7, From: 0}}})
	arr.SetReadHook(in.Hook)
	in.SetRound(0)
	for _, o := range in.CorruptionsDue() {
		if o.Block >= 0 {
			err = arr.CorruptBits(o.Disk, o.Block, o.Bits)
		} else {
			_, err = arr.CorruptRandomBlock(o.Disk, o.Pick, o.Bits)
		}
		if err != nil {
			t.Fatalf("apply order %+v: %v", o, err)
		}
	}

	// The hook itself stays silent — no injected error, no slowdown —
	// and only the checksum layer catches the rot.
	if slow, herr := in.Hook(1, 7); herr != nil || slow != 1 {
		t.Fatalf("Hook = (%v, %v), want silent (1, nil)", slow, herr)
	}
	if _, err := arr.Read(1, 7); !errors.Is(err, storage.ErrCorruptBlock) {
		t.Fatalf("read of rotted block = %v, want ErrCorruptBlock", err)
	}
	if st := in.Stats(); st.HardErrors != 0 || st.BadBlockErrors != 0 {
		t.Fatalf("corruption leaked into error stats: %+v", st)
	}
}

func TestClearDiskDropsCorruptionEntries(t *testing.T) {
	in := New(Plan{Seed: 1, Corruptions: []SilentCorruption{
		{Disk: 0, Block: -1, Rate: 1},
		{Disk: 1, Block: 3, From: 5},
	}})
	in.AddSilentCorruption(SilentCorruption{Disk: 0, Block: 9, From: 0})
	in.ClearDisk(0)
	in.SetRound(5)
	due := in.CorruptionsDue()
	if len(due) != 1 || due[0].Disk != 1 || due[0].Block != 3 {
		t.Fatalf("orders after ClearDisk(0) = %v, want only disk 1 block 3", due)
	}
}
